//! Distributed data layouts.
//!
//! These descriptors map global matrix indices to owning ranks and local
//! storage positions. They are *pure metadata* — every rank computes the
//! same maps locally, so no communication is needed to agree on them
//! (matching the paper, where data distributions are fixed in advance).
//!
//! * [`RowCyclic`] — "the m × n matrix A is partitioned across the P
//!   processors row-cyclically" (3D-CAQR-EG input, Section 7).
//! * [`BlockRow`] — each processor owns a contiguous band of rows
//!   (TSQR / 1D-CAQR-EG input, Sections 5–6, where each of the P
//!   processors owns `m_p ≥ n` rows and the root owns the top rows).
//! * [`BlockCyclic2d`] — 2D block-cyclic with `b × b` blocks over an
//!   `r × c` grid ("we distribute matrices (2D-)block-cyclically with
//!   b × b blocks", Section 8.1, for the `2d-house` and `caqr` baselines).
//!
//! The `scatter_from_full` / `gather_to_full` helpers construct local
//! pieces from (and reassemble) a replicated full matrix; they are used by
//! harnesses and tests *outside* the simulated machine, so they carry no
//! communication cost.

use crate::dense::Matrix;
use crate::partition::balanced_sizes;

/// Row-cyclic layout of an `rows × cols` matrix over `p` ranks:
/// global row `i` lives on rank `i mod p`, at local position `i div p`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowCyclic {
    rows: usize,
    cols: usize,
    p: usize,
}

impl RowCyclic {
    /// Layout for an `rows × cols` matrix over `p` ranks.
    pub fn new(rows: usize, cols: usize, p: usize) -> Self {
        assert!(p >= 1, "need at least one rank");
        RowCyclic { rows, cols, p }
    }

    /// Matrix height.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Matrix width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of ranks.
    pub fn procs(&self) -> usize {
        self.p
    }

    /// Owner of global row `i`.
    pub fn owner(&self, i: usize) -> usize {
        i % self.p
    }

    /// Number of rows owned by `rank` (rows `rank, rank+p, rank+2p, …`).
    pub fn local_count(&self, rank: usize) -> usize {
        if rank >= self.p || rank >= self.rows {
            return 0;
        }
        (self.rows - rank - 1) / self.p + 1
    }

    /// Global index of `rank`'s `l`-th local row.
    pub fn global_row(&self, rank: usize, l: usize) -> usize {
        rank + l * self.p
    }

    /// Local position of global row `i` on its owner.
    pub fn local_of(&self, i: usize) -> usize {
        i / self.p
    }

    /// All global rows owned by `rank`, ascending.
    pub fn local_rows(&self, rank: usize) -> Vec<usize> {
        (0..self.local_count(rank))
            .map(|l| self.global_row(rank, l))
            .collect()
    }

    /// Extract `rank`'s local piece from a full matrix.
    pub fn scatter_from_full(&self, full: &Matrix, rank: usize) -> Matrix {
        assert_eq!(full.rows(), self.rows);
        assert_eq!(full.cols(), self.cols);
        full.take_rows(&self.local_rows(rank))
    }

    /// Reassemble the full matrix from all ranks' local pieces
    /// (`locals[r]` = rank `r`'s piece).
    pub fn gather_to_full(&self, locals: &[Matrix]) -> Matrix {
        assert_eq!(locals.len(), self.p);
        let mut full = Matrix::zeros(self.rows, self.cols);
        for (r, loc) in locals.iter().enumerate() {
            full.put_rows(&self.local_rows(r), loc);
        }
        full
    }
}

/// Block-row layout: rank `r` owns the contiguous rows
/// `starts[r] .. starts[r] + counts[r]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockRow {
    counts: Vec<usize>,
    cols: usize,
}

impl BlockRow {
    /// Layout with explicit per-rank row counts.
    pub fn new(counts: Vec<usize>, cols: usize) -> Self {
        BlockRow { counts, cols }
    }

    /// Balanced contiguous layout of `rows` rows over `p` ranks.
    pub fn balanced(rows: usize, cols: usize, p: usize) -> Self {
        BlockRow {
            counts: balanced_sizes(rows, p),
            cols,
        }
    }

    /// Matrix height.
    pub fn rows(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Matrix width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of ranks.
    pub fn procs(&self) -> usize {
        self.counts.len()
    }

    /// Per-rank row counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// First global row of each rank (prefix sums), plus the total as a
    /// final sentinel.
    pub fn starts(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.counts.len() + 1);
        let mut acc = 0;
        out.push(0);
        for &c in &self.counts {
            acc += c;
            out.push(acc);
        }
        out
    }

    /// Owner of global row `i`.
    pub fn owner(&self, i: usize) -> usize {
        let starts = self.starts();
        assert!(i < *starts.last().unwrap(), "row {i} out of range");
        // Linear scan is fine: P is small in all our uses.
        (0..self.counts.len()).find(|&r| i < starts[r + 1]).unwrap()
    }

    /// All global rows owned by `rank`, ascending.
    pub fn local_rows(&self, rank: usize) -> Vec<usize> {
        let starts = self.starts();
        (starts[rank]..starts[rank + 1]).collect()
    }

    /// Extract `rank`'s local piece from a full matrix.
    pub fn scatter_from_full(&self, full: &Matrix, rank: usize) -> Matrix {
        assert_eq!(full.rows(), self.rows());
        assert_eq!(full.cols(), self.cols);
        let starts = self.starts();
        full.submatrix(starts[rank], starts[rank + 1], 0, self.cols)
    }

    /// Reassemble the full matrix from all ranks' local pieces.
    pub fn gather_to_full(&self, locals: &[Matrix]) -> Matrix {
        assert_eq!(locals.len(), self.procs());
        let mut full = Matrix::zeros(self.rows(), self.cols);
        let starts = self.starts();
        for (r, loc) in locals.iter().enumerate() {
            full.set_submatrix(starts[r], 0, loc);
        }
        full
    }
}

/// 2D block-cyclic layout with `b × b` blocks over an `pr × pc` processor
/// grid (grid rank = `grid_row * pc + grid_col`): global entry `(i, j)`
/// lives on grid processor `((i/b) mod pr, (j/b) mod pc)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockCyclic2d {
    rows: usize,
    cols: usize,
    pr: usize,
    pc: usize,
    b: usize,
}

impl BlockCyclic2d {
    /// Layout of an `rows × cols` matrix over a `pr × pc` grid with
    /// `b × b` blocks.
    pub fn new(rows: usize, cols: usize, pr: usize, pc: usize, b: usize) -> Self {
        assert!(pr >= 1 && pc >= 1, "grid must be nonempty");
        assert!(b >= 1, "block size must be positive");
        BlockCyclic2d {
            rows,
            cols,
            pr,
            pc,
            b,
        }
    }

    /// Matrix height.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Matrix width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Grid height.
    pub fn grid_rows(&self) -> usize {
        self.pr
    }

    /// Grid width.
    pub fn grid_cols(&self) -> usize {
        self.pc
    }

    /// Block size.
    pub fn block(&self) -> usize {
        self.b
    }

    /// Total ranks in the grid.
    pub fn procs(&self) -> usize {
        self.pr * self.pc
    }

    /// Grid coordinates of the owner of entry `(i, j)`.
    pub fn owner_coords(&self, i: usize, j: usize) -> (usize, usize) {
        ((i / self.b) % self.pr, (j / self.b) % self.pc)
    }

    /// Flat rank (`grid_row * pc + grid_col`) of the owner of `(i, j)`.
    pub fn owner(&self, i: usize, j: usize) -> usize {
        let (gi, gj) = self.owner_coords(i, j);
        gi * self.pc + gj
    }

    /// Grid coordinates of flat `rank`.
    pub fn coords_of(&self, rank: usize) -> (usize, usize) {
        (rank / self.pc, rank % self.pc)
    }

    /// Global row indices stored by grid row `gi`, ascending.
    pub fn rows_of_grid_row(&self, gi: usize) -> Vec<usize> {
        (0..self.rows)
            .filter(|&i| (i / self.b) % self.pr == gi)
            .collect()
    }

    /// Global column indices stored by grid column `gj`, ascending.
    pub fn cols_of_grid_col(&self, gj: usize) -> Vec<usize> {
        (0..self.cols)
            .filter(|&j| (j / self.b) % self.pc == gj)
            .collect()
    }

    /// Extract `rank`'s local piece (rows/cols it owns, in ascending global
    /// order) from a full matrix.
    pub fn scatter_from_full(&self, full: &Matrix, rank: usize) -> Matrix {
        assert_eq!(full.rows(), self.rows);
        assert_eq!(full.cols(), self.cols);
        let (gi, gj) = self.coords_of(rank);
        let rs = self.rows_of_grid_row(gi);
        let cs = self.cols_of_grid_col(gj);
        let mut out = Matrix::zeros(rs.len(), cs.len());
        for (li, &i) in rs.iter().enumerate() {
            for (lj, &j) in cs.iter().enumerate() {
                out[(li, lj)] = full[(i, j)];
            }
        }
        out
    }

    /// Reassemble the full matrix from all ranks' local pieces.
    pub fn gather_to_full(&self, locals: &[Matrix]) -> Matrix {
        assert_eq!(locals.len(), self.procs());
        let mut full = Matrix::zeros(self.rows, self.cols);
        for (rank, loc) in locals.iter().enumerate() {
            let (gi, gj) = self.coords_of(rank);
            let rs = self.rows_of_grid_row(gi);
            let cs = self.cols_of_grid_col(gj);
            for (li, &i) in rs.iter().enumerate() {
                for (lj, &j) in cs.iter().enumerate() {
                    full[(i, j)] = loc[(li, lj)];
                }
            }
        }
        full
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_cyclic_ownership() {
        let l = RowCyclic::new(10, 3, 4);
        assert_eq!(l.owner(0), 0);
        assert_eq!(l.owner(5), 1);
        assert_eq!(l.owner(7), 3);
        assert_eq!(l.local_count(0), 3); // rows 0, 4, 8
        assert_eq!(l.local_count(1), 3); // rows 1, 5, 9
        assert_eq!(l.local_count(2), 2); // rows 2, 6
        assert_eq!(l.local_rows(2), vec![2, 6]);
        assert_eq!(l.global_row(1, 2), 9);
        assert_eq!(l.local_of(9), 2);
    }

    #[test]
    fn row_cyclic_more_ranks_than_rows() {
        let l = RowCyclic::new(2, 1, 5);
        assert_eq!(l.local_count(0), 1);
        assert_eq!(l.local_count(1), 1);
        assert_eq!(l.local_count(2), 0);
        assert_eq!(l.local_rows(4), Vec::<usize>::new());
    }

    #[test]
    fn row_cyclic_scatter_gather_roundtrip() {
        let full = Matrix::from_fn(11, 4, |i, j| (i * 4 + j) as f64);
        let l = RowCyclic::new(11, 4, 3);
        let locals: Vec<Matrix> = (0..3).map(|r| l.scatter_from_full(&full, r)).collect();
        assert_eq!(l.gather_to_full(&locals), full);
        // Local piece of rank 1 holds rows 1, 4, 7, 10 in order.
        assert_eq!(locals[1].row(0), full.row(1));
        assert_eq!(locals[1].row(3), full.row(10));
    }

    #[test]
    fn block_row_ownership_and_roundtrip() {
        let l = BlockRow::new(vec![3, 0, 2], 2);
        assert_eq!(l.rows(), 5);
        assert_eq!(l.owner(0), 0);
        assert_eq!(l.owner(2), 0);
        assert_eq!(l.owner(3), 2);
        assert_eq!(l.local_rows(1), Vec::<usize>::new());
        let full = Matrix::from_fn(5, 2, |i, j| (10 * i + j) as f64);
        let locals: Vec<Matrix> = (0..3).map(|r| l.scatter_from_full(&full, r)).collect();
        assert_eq!(locals[1].rows(), 0);
        assert_eq!(l.gather_to_full(&locals), full);
    }

    #[test]
    fn block_row_balanced_matches_partition() {
        let l = BlockRow::balanced(10, 1, 3);
        assert_eq!(l.counts(), &[4, 3, 3]);
        assert_eq!(l.starts(), vec![0, 4, 7, 10]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn block_row_owner_bounds() {
        let l = BlockRow::new(vec![2, 2], 1);
        let _ = l.owner(4);
    }

    #[test]
    fn block_cyclic_ownership() {
        // 2×2 grid, block 2: rows 0-1 → grid row 0, rows 2-3 → grid row 1,
        // rows 4-5 → grid row 0 again.
        let l = BlockCyclic2d::new(6, 6, 2, 2, 2);
        assert_eq!(l.owner_coords(0, 0), (0, 0));
        assert_eq!(l.owner_coords(2, 0), (1, 0));
        assert_eq!(l.owner_coords(4, 5), (0, 0));
        assert_eq!(l.owner(3, 2), 2 + 1);
        assert_eq!(l.rows_of_grid_row(0), vec![0, 1, 4, 5]);
        assert_eq!(l.cols_of_grid_col(1), vec![2, 3]);
    }

    #[test]
    fn block_cyclic_roundtrip() {
        let full = Matrix::from_fn(7, 5, |i, j| (i * 5 + j) as f64);
        for (pr, pc, b) in [(2, 2, 2), (1, 3, 1), (3, 1, 2), (2, 3, 3)] {
            let l = BlockCyclic2d::new(7, 5, pr, pc, b);
            let locals: Vec<Matrix> = (0..l.procs())
                .map(|r| l.scatter_from_full(&full, r))
                .collect();
            assert_eq!(l.gather_to_full(&locals), full, "grid {pr}x{pc} b={b}");
        }
    }

    #[test]
    fn block_cyclic_local_sizes_cover_matrix() {
        let l = BlockCyclic2d::new(9, 7, 2, 3, 2);
        let total: usize = (0..l.procs())
            .map(|r| {
                let (gi, gj) = l.coords_of(r);
                l.rows_of_grid_row(gi).len() * l.cols_of_grid_col(gj).len()
            })
            .sum();
        assert_eq!(total, 9 * 7);
    }

    #[test]
    fn coords_roundtrip() {
        let l = BlockCyclic2d::new(4, 4, 3, 2, 1);
        for rank in 0..6 {
            let (gi, gj) = l.coords_of(rank);
            assert_eq!(gi * 2 + gj, rank);
        }
    }
}
