//! # qr3d-matrix — dense matrix kernels and data layouts
//!
//! The sequential linear-algebra substrate for the SPAA'18 QR reproduction:
//! everything (Sca)LAPACK/PBLAS would provide on one node, built from
//! scratch:
//!
//! * [`Matrix`] — dense row-major `f64` matrices with the block operations
//!   the paper's algorithms need (submatrices, stacking, norms).
//! * [`gemm`] — general matrix multiply (all transpose combinations), the
//!   workhorse of the qr-eg inductive case.
//! * [`qr`] — Householder panel QR (`geqrt`) producing the compact
//!   representation of Section 2.3: unit-lower-trapezoidal basis `V`,
//!   upper-triangular kernel `T` (compact WY, \[SVL89\]/\[Pug92\]), and `R`.
//! * [`pivot`] — column-pivoted rank-revealing QR (`geqp3`): greedy
//!   norm-pivoting with downdates, a non-increasing `R` diagonal, and
//!   numerical-rank detection.
//! * [`tri`] — triangular solves and the sign-altered LU factorization of
//!   [BDG+15, Lemma 6.2] used by TSQR's Householder reconstruction.
//! * [`block`] — runtime blocking parameters (`QR3D_GEQRT_NB`,
//!   `QR3D_TRI_NB`, `QR3D_PIVOT_NB`, `QR3D_GEMM_MC`/`KC`/`NC`,
//!   `QR3D_SIMD`, `QR3D_RANK_THREADS`) for the tiled kernels.
//! * [`simd`] — explicit AVX-512/AVX2/scalar arithmetic primitives
//!   behind runtime dispatch, bitwise-identical at every level.
//! * [`par`] — the within-rank worker pool that splits the big block
//!   loops across `QR3D_RANK_THREADS` threads without changing a bit of
//!   the output.
//! * [`affinity`] — opt-in (`QR3D_PIN_CORES`) best-effort CPU pinning
//!   for the pool's helpers and the executor's rank threads.
//! * [`partition`] — balanced partitions ("parts differ in size by at most
//!   one", Section 4).
//! * [`layout`] — distributed data layouts: row-cyclic (3D-CAQR-EG input),
//!   block-row (TSQR/1D-CAQR-EG input), and 2D block-cyclic (the `2d-house`
//!   baseline of Section 8.1).
//! * [`flops`] — arithmetic-cost formulas used to charge the simulated
//!   machine's clocks.

pub mod affinity;
pub mod block;
pub mod dense;
pub mod flops;
pub mod gemm;
pub mod layout;
pub mod par;
pub mod partition;
pub mod pivot;
pub mod qr;
pub mod scratch;
pub mod simd;
pub mod tiles;
pub mod tri;

pub use dense::Matrix;

/// Glob-import surface.
pub mod prelude {
    pub use crate::block::BlockParams;
    pub use crate::dense::Matrix;
    pub use crate::gemm::{gemm, gram, matmul, matmul_nt, matmul_tn, syrk, Trans};
    pub use crate::layout::{BlockCyclic2d, BlockRow, RowCyclic};
    pub use crate::partition::{balanced_ranges, balanced_sizes, part_of};
    pub use crate::pivot::{
        detected_rank, geqp3, geqp3_ws, is_permutation, permute_cols, rank_tolerance, PivotedQr,
    };
    pub use crate::qr::{
        apply_block_reflector, apply_block_reflector_ws, full_q, geqrt, geqrt_reference, geqrt_ws,
        q_times, q_times_trunc, qt_times, qt_times_trunc, random_with_condition, thin_q, thin_q_ws,
        Reflector,
    };
    pub use crate::scratch::{LocalArena, ScratchArena};
    pub use crate::simd::SimdLevel;
    pub use crate::tiles::{
        geqrt_out_of_core, geqrt_out_of_core_ws, MemStore, OocQr, SpillStore, TileKey, TileStore,
        TiledMatrix,
    };
    pub use crate::tri::{lu_sign, potrf, trsm, NotPositiveDefinite, Side, Uplo};
}
