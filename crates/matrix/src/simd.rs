//! Explicit-SIMD arithmetic primitives with runtime dispatch.
//!
//! The 8×8 gemm register tile, the Householder axpy loops in
//! [`crate::qr`], and the norm-downdate dot products in [`crate::pivot`]
//! all bottom out in the three primitives here: [`microkernel_8x8`],
//! [`fused_axpy`], and [`dot`]. Each has three implementations — a
//! portable scalar loop, an AVX2+FMA variant, and an AVX-512 variant —
//! selected once per process by [`active_level`]:
//!
//! * the CPU's best supported level is detected with
//!   `is_x86_feature_detected!` (non-x86-64 targets are always
//!   [`SimdLevel::Scalar`]);
//! * a `QR3D_SIMD={auto,avx512,avx2,scalar}` override, resolved through
//!   [`crate::block::BlockParams`], caps the level for testing and CI
//!   (a request above hardware support falls back to the best
//!   available — forcing can only *lower* the level, never fault);
//! * [`force_level`] installs a process-global override for the
//!   equivalence tests and the dispatch benchmarks.
//!
//! ## The bitwise contract
//!
//! Every level produces **bit-identical** results, which is what lets
//! the dispatch be transparent (and lets [`force_level`] be a plain
//! relaxed atomic): pinned records, golden outputs, and cross-machine
//! reproducibility cannot depend on which instruction set happened to
//! be present. The contract is enforced structurally:
//!
//! * all multiply-accumulates are *fused* — the scalar fallback uses
//!   [`f64::mul_add`], which is correctly rounded and therefore equals
//!   the hardware `vfmadd` lane for lane;
//! * [`fused_axpy`] and [`microkernel_8x8`] are purely lanewise, so
//!   vector width cannot reassociate anything;
//! * [`dot`] fixes an 8-lane accumulator structure (element `i` goes to
//!   lane `i mod 8`) and a fixed pairwise reduction tree
//!   (`((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`) that every variant —
//!   including the scalar one — replicates exactly.
//!
//! `0 · NaN = NaN` and every other IEEE special case propagate
//! identically at every level: no variant skips, masks, or reorders a
//! lane. The property sweep in `tests/simd_par_bitwise.rs` pins all of
//! this across odd shapes and edge tiles.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// A SIMD dispatch level, ordered from portable to widest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable scalar loops (still fused via [`f64::mul_add`]).
    Scalar,
    /// 256-bit AVX2 + FMA.
    Avx2,
    /// 512-bit AVX-512F.
    Avx512,
}

impl SimdLevel {
    /// The level's `QR3D_SIMD` spelling.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }

    /// Parse a `QR3D_SIMD` value: `None` means `auto` (use the best
    /// supported level); unrecognized spellings also map to `auto`, so
    /// a typo cannot silently force the slow path.
    pub fn parse(s: &str) -> Option<SimdLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(SimdLevel::Scalar),
            "avx2" => Some(SimdLevel::Avx2),
            "avx512" => Some(SimdLevel::Avx512),
            _ => None,
        }
    }
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The best level this CPU supports, detected once per process.
pub fn detected_level() -> SimdLevel {
    static DETECTED: OnceLock<SimdLevel> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f") {
                return SimdLevel::Avx512;
            }
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                return SimdLevel::Avx2;
            }
        }
        SimdLevel::Scalar
    })
}

/// Process-global test/bench override: 0 = none, else level + 1.
/// Relaxed is enough — every level is bitwise-identical, so a racing
/// reader picking the stale level still computes the same bits.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Force a dispatch level for the rest of the process (tests and the
/// dispatch benchmarks); `None` clears the override. Requests above
/// hardware support are clamped down to [`detected_level`].
pub fn force_level(level: Option<SimdLevel>) {
    let v = match level {
        None => 0,
        Some(l) => l.min(detected_level()) as u8 + 1,
    };
    FORCED.store(v, Ordering::Relaxed);
}

/// The level the primitives dispatch to: a [`force_level`] override if
/// present, else the `QR3D_SIMD` request (via
/// [`crate::block::BlockParams::active`]) clamped to hardware support,
/// resolved once and frozen for the process.
pub fn active_level() -> SimdLevel {
    match FORCED.load(Ordering::Relaxed) {
        1 => SimdLevel::Scalar,
        2 => SimdLevel::Avx2,
        3 => SimdLevel::Avx512,
        _ => {
            static RESOLVED: OnceLock<SimdLevel> = OnceLock::new();
            *RESOLVED.get_or_init(|| {
                let requested = crate::block::BlockParams::active()
                    .simd
                    .unwrap_or_else(detected_level);
                requested.min(detected_level())
            })
        }
    }
}

/// The fixed pairwise reduction tree every [`dot`] variant shares.
#[inline(always)]
fn reduce8(l: &[f64; 8]) -> f64 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

/// `y[i] = fma(a, x[i], y[i])` — the fused axpy. Purely lanewise, so
/// every dispatch level is bitwise-identical.
///
/// # Panics
/// If the slices differ in length.
#[inline]
pub fn fused_axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "fused_axpy: length mismatch");
    match active_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: active_level() never exceeds detected_level().
        SimdLevel::Avx2 => unsafe { x86::fused_axpy_avx2(a, x, y) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Avx512 => unsafe { x86::fused_axpy_avx512(a, x, y) },
        _ => fused_axpy_scalar(a, x, y),
    }
}

#[inline(always)]
fn fused_axpy_scalar(a: f64, x: &[f64], y: &mut [f64]) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = a.mul_add(xi, *yi);
    }
}

/// `Σ x[i]·y[i]` with a fixed 8-lane accumulator structure (element `i`
/// accumulates into lane `i mod 8` via fma) and the fixed `reduce8`
/// pairwise tree — bitwise-identical at every dispatch level.
///
/// # Panics
/// If the slices differ in length.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    match active_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: active_level() never exceeds detected_level().
        SimdLevel::Avx2 => unsafe { x86::dot_avx2(x, y) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Avx512 => unsafe { x86::dot_avx512(x, y) },
        _ => dot_scalar(x, y),
    }
}

#[inline(always)]
fn dot_tail(x: &[f64], y: &[f64], lanes: &mut [f64; 8]) -> f64 {
    // Shared tail + reduction: the remainder (< 8 elements) lands in
    // lanes 0.. in order, exactly as the vector loops fill lanes.
    let n = x.len();
    let done = n / 8 * 8;
    for (l, i) in (done..n).enumerate() {
        lanes[l] = x[i].mul_add(y[i], lanes[l]);
    }
    reduce8(lanes)
}

#[inline(always)]
fn dot_scalar(x: &[f64], y: &[f64]) -> f64 {
    let mut lanes = [0.0f64; 8];
    for (xv, yv) in x.chunks_exact(8).zip(y.chunks_exact(8)) {
        for l in 0..8 {
            lanes[l] = xv[l].mul_add(yv[l], lanes[l]);
        }
    }
    dot_tail(x, y, &mut lanes)
}

/// Microkernel tile rows (one register tile of the blocked gemm).
pub const MR: usize = 8;
/// Microkernel tile columns (one AVX-512 register of `f64`, two AVX2).
pub const NR: usize = 8;

/// The gemm register tile: `acc[i][j] = fma(a[kk·8+i], b[kk·8+j],
/// acc[i][j])` over `kk` in order. `a` holds `kc` column-chunks of
/// [`MR`] packed `op(A)` values, `b` holds `kc` row-chunks of [`NR`]
/// packed `op(B)` values. Per element the fma chain depends only on the
/// `kk` order, so every dispatch level — and any row-partitioning of
/// the surrounding macro-tiles — is bitwise-identical.
#[inline]
pub fn microkernel_8x8(a: &[f64], b: &[f64], acc: &mut [[f64; NR]; MR]) {
    match active_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: active_level() never exceeds detected_level().
        SimdLevel::Avx2 => unsafe { x86::microkernel_avx2(a, b, acc) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        SimdLevel::Avx512 => unsafe { x86::microkernel_avx512(a, b, acc) },
        _ => microkernel_scalar(a, b, acc),
    }
}

#[inline(always)]
fn microkernel_scalar(a: &[f64], b: &[f64], acc: &mut [[f64; NR]; MR]) {
    for (av, bv) in a.chunks_exact(MR).zip(b.chunks_exact(NR)) {
        for i in 0..MR {
            let ai = av[i];
            for j in 0..NR {
                acc[i][j] = ai.mul_add(bv[j], acc[i][j]);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The `std::arch` variants. Every function is `unsafe fn` with a
    //! `#[target_feature]` attribute: callers must guarantee the
    //! feature is present, which the dispatcher does via
    //! `detected_level()`. Bodies mirror the scalar loops lane for
    //! lane; see the module docs for the bitwise contract.

    use super::{dot_tail, MR, NR};
    use std::arch::x86_64::*;

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn fused_axpy_avx2(a: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len();
        let av = _mm256_set1_pd(a);
        let chunks = n / 4;
        for c in 0..chunks {
            let xp = x.as_ptr().add(c * 4);
            let yp = y.as_mut_ptr().add(c * 4);
            let yv = _mm256_fmadd_pd(av, _mm256_loadu_pd(xp), _mm256_loadu_pd(yp));
            _mm256_storeu_pd(yp, yv);
        }
        for i in chunks * 4..n {
            y[i] = a.mul_add(x[i], y[i]);
        }
    }

    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn fused_axpy_avx512(a: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len();
        let av = _mm512_set1_pd(a);
        let chunks = n / 8;
        for c in 0..chunks {
            let xp = x.as_ptr().add(c * 8);
            let yp = y.as_mut_ptr().add(c * 8);
            let yv = _mm512_fmadd_pd(av, _mm512_loadu_pd(xp), _mm512_loadu_pd(yp));
            _mm512_storeu_pd(yp, yv);
        }
        for i in chunks * 8..n {
            y[i] = a.mul_add(x[i], y[i]);
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn dot_avx2(x: &[f64], y: &[f64]) -> f64 {
        // Lanes 0..4 and 4..8 of the shared 8-lane accumulator live in
        // two ymm registers; chunks of 8 keep the element→lane mapping
        // (i mod 8) identical to the scalar and AVX-512 variants.
        let chunks = x.len() / 8;
        let mut lo = _mm256_setzero_pd();
        let mut hi = _mm256_setzero_pd();
        for c in 0..chunks {
            let xp = x.as_ptr().add(c * 8);
            let yp = y.as_ptr().add(c * 8);
            lo = _mm256_fmadd_pd(_mm256_loadu_pd(xp), _mm256_loadu_pd(yp), lo);
            hi = _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(4)), _mm256_loadu_pd(yp.add(4)), hi);
        }
        let mut lanes = [0.0f64; 8];
        _mm256_storeu_pd(lanes.as_mut_ptr(), lo);
        _mm256_storeu_pd(lanes.as_mut_ptr().add(4), hi);
        dot_tail(x, y, &mut lanes)
    }

    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn dot_avx512(x: &[f64], y: &[f64]) -> f64 {
        let chunks = x.len() / 8;
        let mut acc = _mm512_setzero_pd();
        for c in 0..chunks {
            let xv = _mm512_loadu_pd(x.as_ptr().add(c * 8));
            let yv = _mm512_loadu_pd(y.as_ptr().add(c * 8));
            acc = _mm512_fmadd_pd(xv, yv, acc);
        }
        let mut lanes = [0.0f64; 8];
        _mm512_storeu_pd(lanes.as_mut_ptr(), acc);
        dot_tail(x, y, &mut lanes)
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn microkernel_avx2(a: &[f64], b: &[f64], acc: &mut [[f64; NR]; MR]) {
        // 8×8 needs 16 ymm accumulators — more than the register file.
        // Two passes of 4 rows × 2 ymm (8 accumulators + 2 b + 1
        // broadcast = 11 live registers) keep everything resident; the
        // per-element kk-order fma chain is unchanged.
        let k = a.len() / MR;
        for half in 0..2 {
            let r0 = half * 4;
            let mut lo = [_mm256_setzero_pd(); 4];
            let mut hi = [_mm256_setzero_pd(); 4];
            for i in 0..4 {
                lo[i] = _mm256_loadu_pd(acc[r0 + i].as_ptr());
                hi[i] = _mm256_loadu_pd(acc[r0 + i].as_ptr().add(4));
            }
            for kk in 0..k {
                let bp = b.as_ptr().add(kk * NR);
                let b_lo = _mm256_loadu_pd(bp);
                let b_hi = _mm256_loadu_pd(bp.add(4));
                let ap = a.as_ptr().add(kk * MR + r0);
                for i in 0..4 {
                    let ai = _mm256_set1_pd(*ap.add(i));
                    lo[i] = _mm256_fmadd_pd(ai, b_lo, lo[i]);
                    hi[i] = _mm256_fmadd_pd(ai, b_hi, hi[i]);
                }
            }
            for i in 0..4 {
                _mm256_storeu_pd(acc[r0 + i].as_mut_ptr(), lo[i]);
                _mm256_storeu_pd(acc[r0 + i].as_mut_ptr().add(4), hi[i]);
            }
        }
    }

    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn microkernel_avx512(a: &[f64], b: &[f64], acc: &mut [[f64; NR]; MR]) {
        // One zmm per tile row: 8 accumulators + 1 b + 1 broadcast.
        let k = a.len() / MR;
        let mut rows = [_mm512_setzero_pd(); MR];
        for i in 0..MR {
            rows[i] = _mm512_loadu_pd(acc[i].as_ptr());
        }
        for kk in 0..k {
            let bv = _mm512_loadu_pd(b.as_ptr().add(kk * NR));
            let ap = a.as_ptr().add(kk * MR);
            for (i, row) in rows.iter_mut().enumerate() {
                *row = _mm512_fmadd_pd(_mm512_set1_pd(*ap.add(i)), bv, *row);
            }
        }
        for i in 0..MR {
            _mm512_storeu_pd(acc[i].as_mut_ptr(), rows[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run `f` once per level this CPU supports (always includes
    /// Scalar), clearing the override afterwards.
    fn for_each_level(mut f: impl FnMut(SimdLevel)) {
        for level in [SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512] {
            if level <= detected_level() {
                force_level(Some(level));
                f(level);
            }
        }
        force_level(None);
    }

    fn splitmix(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }

    #[test]
    fn parse_and_names_roundtrip() {
        for level in [SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512] {
            assert_eq!(SimdLevel::parse(level.name()), Some(level));
        }
        assert_eq!(SimdLevel::parse(" AVX512 "), Some(SimdLevel::Avx512));
        assert_eq!(SimdLevel::parse("auto"), None);
        assert_eq!(SimdLevel::parse("garbage"), None);
        assert_eq!(SimdLevel::Avx2.to_string(), "avx2");
    }

    #[test]
    fn force_clamps_to_hardware() {
        force_level(Some(SimdLevel::Avx512));
        assert!(active_level() <= detected_level());
        force_level(None);
    }

    #[test]
    fn axpy_and_dot_levels_bitwise_identical() {
        // Odd lengths exercise every tail-lane count, including the
        // all-tail (< 8) cases; NaN/∞/0 lanes must propagate the same
        // bits at every level.
        let mut seed = 7u64;
        for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 100, 257] {
            let mut x: Vec<f64> = (0..n).map(|_| splitmix(&mut seed)).collect();
            let y0: Vec<f64> = (0..n).map(|_| splitmix(&mut seed)).collect();
            if n > 4 {
                x[1] = 0.0;
                x[2] = f64::NAN;
                x[3] = f64::INFINITY;
                x[4] = -0.0;
            }
            let mut expect_axpy: Option<Vec<u64>> = None;
            let mut expect_dot: Option<u64> = None;
            for_each_level(|level| {
                let mut y = y0.clone();
                fused_axpy(1.25, &x, &mut y);
                let bits: Vec<u64> = y.iter().map(|v| v.to_bits()).collect();
                match &expect_axpy {
                    None => expect_axpy = Some(bits),
                    Some(e) => assert_eq!(e, &bits, "axpy n={n} level={level}"),
                }
                let d = dot(&x, &y0).to_bits();
                match expect_dot {
                    None => expect_dot = Some(d),
                    Some(e) => assert_eq!(e, d, "dot n={n} level={level}"),
                }
            });
        }
    }

    #[test]
    fn dot_matches_naive_numerically() {
        let x: Vec<f64> = (1..=100).map(|i| i as f64 / 7.0).collect();
        let y: Vec<f64> = (1..=100).map(|i| (101 - i) as f64 / 3.0).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let got = dot(&x, &y);
        assert!((got - naive).abs() <= 1e-10 * naive.abs());
    }

    #[test]
    fn microkernel_levels_bitwise_identical() {
        let mut seed = 42u64;
        for kc in [0usize, 1, 2, 3, 7, 32, 33] {
            let mut a: Vec<f64> = (0..kc * MR).map(|_| splitmix(&mut seed)).collect();
            let mut b: Vec<f64> = (0..kc * NR).map(|_| splitmix(&mut seed)).collect();
            if kc >= 2 {
                // The PR 1 guard: 0·NaN must stay NaN, identically.
                a[0] = 0.0;
                b[0] = f64::NAN;
                a[MR] = f64::NAN;
                b[NR] = 0.0;
            }
            let acc0 = {
                let mut acc = [[0.0f64; NR]; MR];
                for (i, row) in acc.iter_mut().enumerate() {
                    for (j, v) in row.iter_mut().enumerate() {
                        *v = (i * NR + j) as f64 * 0.125 - 2.0;
                    }
                }
                acc
            };
            let mut expect: Option<[[u64; NR]; MR]> = None;
            for_each_level(|level| {
                let mut acc = acc0;
                microkernel_8x8(&a, &b, &mut acc);
                let mut bits = [[0u64; NR]; MR];
                for i in 0..MR {
                    for j in 0..NR {
                        bits[i][j] = acc[i][j].to_bits();
                    }
                }
                match &expect {
                    None => expect = Some(bits),
                    Some(e) => assert_eq!(e, &bits, "microkernel kc={kc} level={level}"),
                }
            });
        }
    }
}
