//! Scratch arenas for the blocked kernels: reusable `f64` buffers so the
//! factorization hot loops allocate nothing in steady state.
//!
//! The blocked [`crate::qr::geqrt`], [`crate::tri::trsm`], and friends
//! need panel/workspace buffers every blocking step. Allocating them
//! fresh each step makes the kernels measure the allocator instead of
//! the arithmetic, so every blocked entry point has a `*_ws` variant
//! taking `&mut dyn ScratchArena`. Where a simulated rank runs,
//! `qr3d_machine::Workspace` implements the trait, so the per-rank pool
//! serves the kernels directly; serial paths (tests, host-side
//! assembly) use a [`LocalArena`] — the convenience wrappers without a
//! `_ws` suffix fall back to a per-thread `LocalArena` automatically.

use std::cell::RefCell;

use crate::dense::Matrix;

/// A pool of reusable `Vec<f64>` scratch buffers. `take` returns a
/// zeroed buffer of exactly the requested length; `put` recycles it.
pub trait ScratchArena {
    /// Borrow a zeroed buffer of exactly `len` words.
    fn take(&mut self, len: usize) -> Vec<f64>;
    /// Return a buffer to the pool for reuse.
    fn put(&mut self, v: Vec<f64>);
}

/// Borrow an `r × c` zeroed scratch matrix from the arena.
pub fn take_matrix(ws: &mut dyn ScratchArena, r: usize, c: usize) -> Matrix {
    Matrix::from_vec(r, c, ws.take(r * c))
}

/// Return a scratch matrix's buffer to the arena.
pub fn put_matrix(ws: &mut dyn ScratchArena, m: Matrix) {
    ws.put(m.into_vec());
}

/// Buffers an arena retains at most; returning more drops the smallest.
pub const POOL_CAP: usize = 16;

/// A pooling arena: the backing store of the per-rank
/// `qr3d_machine::Workspace` and the standalone arena of serial callers.
#[derive(Debug, Default)]
pub struct LocalArena {
    pool: Vec<Vec<f64>>,
    hits: u64,
    misses: u64,
    outstanding_bytes: usize,
    peak_bytes: usize,
}

impl LocalArena {
    /// An empty arena.
    pub fn new() -> Self {
        LocalArena::default()
    }

    /// Pop the best-fit pooled buffer (smallest sufficient capacity),
    /// cleared, or a fresh one with at least `cap` capacity.
    fn take_empty(&mut self, cap: usize) -> Vec<f64> {
        let mut best: Option<usize> = None;
        for (i, b) in self.pool.iter().enumerate() {
            if b.capacity() >= cap && best.is_none_or(|j| b.capacity() < self.pool[j].capacity()) {
                best = Some(i);
            }
        }
        let v = match best {
            Some(i) => {
                self.hits += 1;
                let mut v = self.pool.swap_remove(i);
                v.clear();
                v
            }
            None => {
                self.misses += 1;
                Vec::with_capacity(cap)
            }
        };
        self.outstanding_bytes += v.capacity() * size_of::<f64>();
        self.peak_bytes = self.peak_bytes.max(self.outstanding_bytes);
        v
    }

    /// Borrow a buffer holding a copy of `src`, reusing pooled capacity.
    /// Each word is written exactly once (no zero-fill before the copy).
    pub fn take_copy_of(&mut self, src: &[f64]) -> Vec<f64> {
        let mut v = self.take_empty(src.len());
        v.extend_from_slice(src);
        v
    }

    /// `(reuses, fresh allocations)` served so far — lets tests assert
    /// that steady-state loops stopped allocating.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of buffers currently retained (≤ [`POOL_CAP`]).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Bytes currently borrowed from the arena (taken, not yet `put`
    /// back), counted by buffer capacity.
    pub fn outstanding_bytes(&self) -> usize {
        self.outstanding_bytes
    }

    /// High-watermark of [`LocalArena::outstanding_bytes`] over the
    /// arena's lifetime — what the kernels' scratch demand actually
    /// peaked at, so callers can budget the arena alongside a bounded
    /// tile cache (`SpillStore`).
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }
}

impl ScratchArena for LocalArena {
    fn take(&mut self, len: usize) -> Vec<f64> {
        let mut v = self.take_empty(len);
        v.resize(len, 0.0);
        v
    }

    fn put(&mut self, v: Vec<f64>) {
        // Saturating: a caller may `put` a buffer the arena never served
        // (or one it grew), so the decrement can exceed the increment.
        self.outstanding_bytes = self
            .outstanding_bytes
            .saturating_sub(v.capacity() * size_of::<f64>());
        if v.capacity() == 0 {
            return;
        }
        self.pool.push(v);
        if self.pool.len() > POOL_CAP {
            let min = self
                .pool
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.capacity())
                .map(|(i, _)| i)
                .expect("pool nonempty");
            self.pool.swap_remove(min);
        }
    }
}

thread_local! {
    static THREAD_ARENA: RefCell<LocalArena> = RefCell::new(LocalArena::new());
}

/// Run `f` with the calling thread's default arena. Used by the
/// non-`_ws` kernel wrappers; do not nest (the arena is a `RefCell`),
/// which the wrappers guarantee by never calling each other.
pub fn with_thread_arena<R>(f: impl FnOnce(&mut LocalArena) -> R) -> R {
    THREAD_ARENA.with(|a| f(&mut a.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_and_reuses() {
        let mut ws = LocalArena::new();
        let mut b = ws.take(8);
        assert_eq!(b, vec![0.0; 8]);
        b[3] = 5.0;
        let ptr = b.as_ptr();
        ws.put(b);
        let b2 = ws.take(6);
        assert_eq!(b2.as_ptr(), ptr, "smaller request reuses the buffer");
        assert_eq!(b2, vec![0.0; 6], "reused buffers are re-zeroed");
        assert_eq!(ws.stats(), (1, 1));
    }

    #[test]
    fn pool_is_bounded() {
        let mut ws = LocalArena::new();
        for i in 1..POOL_CAP + 10 {
            ws.put(vec![0.0; i]);
        }
        assert!(ws.pool.len() <= POOL_CAP);
        // The retained buffers are the largest ones.
        assert!(ws.pool.iter().all(|b| b.capacity() > 9));
    }

    #[test]
    fn matrix_roundtrip() {
        let mut ws = LocalArena::new();
        let m = take_matrix(&mut ws, 3, 4);
        assert_eq!((m.rows(), m.cols()), (3, 4));
        put_matrix(&mut ws, m);
        let (hits, misses) = ws.stats();
        assert_eq!((hits, misses), (0, 1));
        let _ = take_matrix(&mut ws, 2, 2);
        assert_eq!(ws.stats(), (1, 1));
    }

    #[test]
    fn watermark_tracks_outstanding_and_peak() {
        let mut ws = LocalArena::new();
        assert_eq!((ws.outstanding_bytes(), ws.peak_bytes()), (0, 0));
        let a = ws.take(4);
        let b = ws.take(8);
        let live = (a.capacity() + b.capacity()) * size_of::<f64>();
        assert_eq!(ws.outstanding_bytes(), live);
        assert_eq!(ws.peak_bytes(), live);
        ws.put(a);
        assert!(ws.outstanding_bytes() < live, "put shrinks outstanding");
        assert_eq!(ws.peak_bytes(), live, "peak is a high-watermark");
        ws.put(b);
        assert_eq!(ws.outstanding_bytes(), 0);
        // Reuse from the pool counts the same as a fresh allocation.
        let c = ws.take(6);
        assert_eq!(ws.outstanding_bytes(), c.capacity() * size_of::<f64>());
        ws.put(c);
        // Returning a buffer the arena never served must not underflow.
        ws.put(vec![0.0; 1000]);
        assert_eq!(ws.outstanding_bytes(), 0);
    }

    #[test]
    fn thread_arena_serves() {
        let n = with_thread_arena(|ws| {
            let b = ws.take(32);
            let n = b.len();
            ws.put(b);
            n
        });
        assert_eq!(n, 32);
    }
}
