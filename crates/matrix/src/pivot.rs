//! Column-pivoted (rank-revealing) Householder QR — the LAPACK
//! `geqp3` of this workspace.
//!
//! [`geqp3`] factors `A·P = Q·R` with `P` a column permutation chosen
//! greedily: every step pivots the remaining column of largest partial
//! norm to the front, so the diagonal of `R` is non-increasing in
//! magnitude and the numerical rank of `A` can be read off its decay
//! ([`detected_rank`]). This is what the unpivoted [`crate::qr::geqrt`]
//! cannot do: on rank-deficient input it silently produces *some* valid
//! factorization whose `R` hides the deficiency in arbitrary positions.
//!
//! ## Blocked kernel
//!
//! The factorization follows LAPACK's `dgeqp3`/`dlaqps` structure:
//! panels of [`crate::block::PIVOT_NB`] columns (`QR3D_PIVOT_NB`) are
//! factored with the trailing update **delayed** — an auxiliary matrix
//! `F` accumulates `τ·Aᵀv` products so that, within a panel, only the
//! current column and the current pivot row are brought up to date
//! (exactly what pivot selection needs), and the `O(mn·nb)` bulk of the
//! trailing update runs as **one [`gemm`] per panel** (`A ← A − V·Fᵀ`).
//!
//! Column norms are **downdated** instead of recomputed: applying a
//! Householder reflector preserves each trailing column's norm over the
//! active rows, so the partial norm below the new pivot row shrinks by
//! exactly the (updated) pivot-row entry. The classic hazard is
//! catastrophic cancellation when the downdate removes nearly the whole
//! norm; following `dlaqps`, a downdate that would cancel past
//! `√ε`-level (relative to the last exact norm) ends the panel early and
//! triggers an **exact recomputation** of every trailing norm after the
//! block update — the recompute-on-cancellation safeguard.
//!
//! All scratch comes from a [`ScratchArena`]; after warm-up the panel
//! loop allocates nothing beyond the returned factors.

use crate::block::BlockParams;
use crate::dense::Matrix;
use crate::gemm::{gemm, Trans};
use crate::qr::{larft_panel, Reflector};
use crate::scratch::{put_matrix, take_matrix, with_thread_arena, ScratchArena};

/// A column-pivoted QR factorization `A·P = Q·R` with detected numerical
/// rank.
#[derive(Debug, Clone)]
pub struct PivotedQr {
    /// The compact-WY Householder factors of the *permuted* matrix
    /// `A·P = (I − V·T·Vᵀ)·[R; 0]` (the same representation
    /// [`crate::qr::geqrt`] returns; `q_factors.r` is the same matrix as
    /// [`PivotedQr::r`]).
    pub q_factors: Reflector,
    /// The `n × n` upper-triangular R-factor of `A·P`, with nonnegative,
    /// non-increasing diagonal: `r[0,0] ≥ r[1,1] ≥ … ≥ 0`.
    pub r: Matrix,
    /// The permutation, as column indices of `A`: column `j` of `A·P` is
    /// column `perm[j]` of `A` (see [`permute_cols`]).
    pub perm: Vec<usize>,
    /// Numerical rank detected from `R`'s diagonal decay at
    /// [`rank_tolerance`] — exact on matrices whose rank deficiency sits
    /// well above roundoff.
    pub rank: usize,
}

/// The default relative tolerance for rank detection on an `m × n`
/// problem: `max(m, n)·ε`, the usual LAPACK-style threshold.
pub fn rank_tolerance(m: usize, n: usize) -> f64 {
    m.max(n) as f64 * f64::EPSILON
}

/// Numerical rank read off an upper-triangular `R`: the number of
/// diagonal entries with `|r[j,j]| > rtol · max_i |r[i,i]|`. For a
/// *pivoted* `R` (non-increasing diagonal) this is the length of the
/// significant prefix; for an unpivoted `R` it is a diagnostic — a
/// result `< n` proves rank deficiency, while equality proves nothing
/// (unpivoted QR can hide deficiency off the diagonal).
pub fn detected_rank(r: &Matrix, rtol: f64) -> usize {
    let k = r.rows().min(r.cols());
    let dmax = (0..k).map(|j| r[(j, j)].abs()).fold(0.0f64, f64::max);
    if dmax == 0.0 {
        return 0;
    }
    (0..k).filter(|&j| r[(j, j)].abs() > rtol * dmax).count()
}

/// True when `perm` is a permutation of `0..n`.
pub fn is_permutation(perm: &[usize], n: usize) -> bool {
    if perm.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &p in perm {
        if p >= n || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

/// Materialize `A·P`: column `j` of the result is column `perm[j]` of
/// `a`.
pub fn permute_cols(a: &Matrix, perm: &[usize]) -> Matrix {
    assert!(
        is_permutation(perm, a.cols()),
        "permute_cols: invalid permutation"
    );
    Matrix::from_fn(a.rows(), a.cols(), |i, j| a[(i, perm[j])])
}

/// Column-pivoted Householder QR of an `m × n` matrix (`m ≥ n`):
/// `A·P = (I − V·T·Vᵀ)·[R; 0]` with non-increasing `R` diagonal and the
/// numerical rank detected at [`rank_tolerance`]. Scratch comes from the
/// calling thread's arena; use [`geqp3_ws`] to pass an explicit one.
///
/// # Panics
/// If `m < n`.
pub fn geqp3(a: &Matrix) -> PivotedQr {
    with_thread_arena(|ws| geqp3_ws(ws, a))
}

/// [`geqp3`] with an explicit scratch arena: after warm-up, the
/// factorization allocates only its output factors.
pub fn geqp3_ws(ws: &mut dyn ScratchArena, a: &Matrix) -> PivotedQr {
    let (m, n) = (a.rows(), a.cols());
    assert!(m >= n, "geqp3 requires m ≥ n (got {m} × {n})");
    if n == 0 {
        return PivotedQr {
            q_factors: Reflector {
                v: Matrix::zeros(m, 0),
                t: Matrix::zeros(0, 0),
                r: Matrix::zeros(0, 0),
            },
            r: Matrix::zeros(0, 0),
            perm: Vec::new(),
            rank: 0,
        };
    }

    let nb_max = BlockParams::active().pivot_nb;
    // Like `geqrt_ws`: `work` accumulates V below the diagonal and R
    // on/above it (for the *permuted* column order) and becomes the
    // explicit V at the end.
    let mut work = a.clone();
    let mut t = Matrix::zeros(n, n);
    let mut perm: Vec<usize> = (0..n).collect();
    let mut taus = ws.take(n);
    let mut small = ws.take(nb_max); // larft z / F-correction aux scratch

    // Partial column norms: vn1[g] = ‖work[j.., g]‖ for the current
    // elimination step j; vn2[g] = the last exactly-computed value
    // (the cancellation reference, as in `dlaqps`).
    let mut vn1 = ws.take(n);
    let mut vn2 = ws.take(n);
    for g in 0..n {
        let s: f64 = (0..m).map(|i| work[(i, g)] * work[(i, g)]).sum();
        vn1[g] = s.sqrt();
        vn2[g] = vn1[g];
    }
    let tol3z = f64::EPSILON.sqrt();

    let mut j0 = 0;
    while j0 < n {
        let nb = nb_max.min(n - j0);
        let nt = n - j0; // trailing columns, panel included
        let mut f = take_matrix(ws, nt, nb);
        let mut recompute = false;

        // ---- Panel: factor up to nb columns with delayed updates. ----
        let mut kb = 0;
        while kb < nb {
            let k = kb;
            let j = j0 + k;

            // Greedy pivot: the remaining column of largest partial
            // norm (ties to the leftmost, keeping runs reproducible).
            let mut pvt = k;
            for c in k + 1..nt {
                if vn1[j0 + c] > vn1[j0 + pvt] {
                    pvt = c;
                }
            }
            if pvt != k {
                let (gp, gk) = (j0 + pvt, j);
                for i in 0..m {
                    let row = work.row_mut(i);
                    row.swap(gp, gk);
                }
                for c in 0..nb {
                    let tmp = f[(pvt, c)];
                    f[(pvt, c)] = f[(k, c)];
                    f[(k, c)] = tmp;
                }
                perm.swap(gp, gk);
                vn1.swap(gp, gk);
                vn2.swap(gp, gk);
            }

            // Bring column j current: apply the panel's accumulated
            // reflectors to rows j..m (the delayed update, restricted to
            // the one column pivot selection just chose).
            if k > 0 {
                // Row-contiguous dots run on the dispatched SIMD dot
                // (crate::simd) — fixed reduction tree, bit-identical
                // at every level.
                for i in j..m {
                    let row = work.row_mut(i);
                    let s = crate::simd::dot(&row[j0..j0 + k], &f.row(k)[..k]);
                    row[j] -= s;
                }
            }

            // Householder vector for the updated column.
            let mut sigma = 0.0;
            for i in j + 1..m {
                let x = work[(i, j)];
                sigma += x * x;
            }
            let x0 = work[(j, j)];
            let (tau, mu) = if sigma == 0.0 {
                if x0 >= 0.0 {
                    (0.0, x0)
                } else {
                    (2.0, -x0)
                }
            } else {
                let mu = (x0 * x0 + sigma).sqrt();
                let v0 = if x0 <= 0.0 {
                    x0 - mu
                } else {
                    -sigma / (x0 + mu)
                };
                for i in j + 1..m {
                    work[(i, j)] /= v0;
                }
                (2.0 * v0 * v0 / (sigma + v0 * v0), mu)
            };
            taus[j] = tau;
            // Unit diagonal held explicitly while v_j feeds the F and
            // pivot-row products (restored to mu below, as in `dlaqps`).
            work[(j, j)] = 1.0;

            // F[c, k] = τ·(A[j.., j0+c]ᵀ·v_j) for the not-yet-factored
            // columns; zero for the factored ones, then the incremental
            // correction −τ·F[:, ..k]·(V_panelᵀ·v_j) over all rows.
            for c in k + 1..nt {
                let g = j0 + c;
                let mut s = 0.0;
                for i in j..m {
                    s += work[(i, g)] * work[(i, j)];
                }
                f[(c, k)] = tau * s;
            }
            for c in 0..=k {
                f[(c, k)] = 0.0;
            }
            if k > 0 && tau != 0.0 {
                for (c, aux) in small.iter_mut().enumerate().take(k) {
                    let mut s = 0.0;
                    for i in j..m {
                        s += work[(i, j0 + c)] * work[(i, j)];
                    }
                    *aux = s;
                }
                for c in 0..nt {
                    let s = crate::simd::dot(&f.row(c)[..k], &small[..k]);
                    f[(c, k)] -= tau * s;
                }
            }

            // Bring the pivot row current across the trailing columns —
            // these entries are final R values *and* exactly what the
            // norm downdate needs.
            for c in k + 1..nt {
                let g = j0 + c;
                let s = crate::simd::dot(&work.row(j)[j0..j0 + k + 1], &f.row(c)[..k + 1]);
                work[(j, g)] -= s;
            }

            // Norm downdate with the cancellation safeguard: the
            // reflector preserves ‖work[j.., g]‖, so the partial norm
            // below row j shrinks by the updated row-j entry; a downdate
            // that cancels past √ε of the reference norm ends the panel
            // for an exact recompute.
            for c in k + 1..nt {
                let g = j0 + c;
                if vn1[g] != 0.0 {
                    let ratio = work[(j, g)].abs() / vn1[g];
                    let temp = (1.0 - ratio * ratio).max(0.0);
                    let temp2 = temp * (vn1[g] / vn2[g]) * (vn1[g] / vn2[g]);
                    if temp2 <= tol3z {
                        recompute = true;
                    } else {
                        vn1[g] *= temp.sqrt();
                    }
                }
            }

            work[(j, j)] = mu;
            kb += 1;
            if recompute {
                break;
            }
        }
        let j1 = j0 + kb;

        // ---- Delayed trailing update, one gemm: A ← A − V_panel·Fᵀ
        // over rows j1..m, columns j1..n (rows j0..j1 were brought
        // current column-by-column as pivot rows). ----
        if j1 < n {
            let (mv, ntr) = (m - j1, n - j1);
            if mv > 0 {
                let mut vp = take_matrix(ws, mv, kb);
                for i in 0..mv {
                    vp.row_mut(i).copy_from_slice(&work.row(j1 + i)[j0..j1]);
                }
                let mut fs = take_matrix(ws, ntr, kb);
                for c in 0..ntr {
                    fs.row_mut(c).copy_from_slice(&f.row(kb + c)[..kb]);
                }
                let mut ct = take_matrix(ws, mv, ntr);
                for i in 0..mv {
                    ct.row_mut(i).copy_from_slice(&work.row(j1 + i)[j1..n]);
                }
                gemm(Trans::No, Trans::Yes, -1.0, &vp, &fs, 1.0, &mut ct);
                for i in 0..mv {
                    work.row_mut(j1 + i)[j1..n].copy_from_slice(ct.row(i));
                }
                put_matrix(ws, vp);
                put_matrix(ws, fs);
                put_matrix(ws, ct);
            }
            if recompute {
                // The safeguard fired: every trailing partial norm is
                // recomputed exactly from the now-updated columns and
                // becomes the new cancellation reference.
                for g in j1..n {
                    let s: f64 = (j1..m).map(|i| work[(i, g)] * work[(i, g)]).sum();
                    vn1[g] = s.sqrt();
                    vn2[g] = vn1[g];
                }
            }
        }
        put_matrix(ws, f);

        // ---- Compact-WY bookkeeping, as in `geqrt_ws`: the panel's T
        // block, then the cross-panel growth T₁₂ = −T₁·(V₁ᵀV_p)·T_p. ----
        let mj = m - j0;
        let mut p = take_matrix(ws, mj, kb);
        for i in 0..mj {
            p.row_mut(i).copy_from_slice(&work.row(j0 + i)[j0..j1]);
        }
        larft_panel(&p, &taus[j0..j1], &mut t, j0, &mut small);
        if j0 > 0 {
            // Explicit panel basis (unit diagonal, zeros above).
            let mut vp = take_matrix(ws, mj, kb);
            for i in 0..mj {
                let lim = i.min(kb);
                vp.row_mut(i)[..lim].copy_from_slice(&p.row(i)[..lim]);
                if i < kb {
                    vp[(i, i)] = 1.0;
                }
            }
            let mut tp = take_matrix(ws, kb, kb);
            for i in 0..kb {
                tp.row_mut(i).copy_from_slice(&t.row(j0 + i)[j0..j1]);
            }
            let mut v1 = take_matrix(ws, mj, j0);
            for i in 0..mj {
                v1.row_mut(i).copy_from_slice(&work.row(j0 + i)[..j0]);
            }
            let mut z = take_matrix(ws, j0, kb);
            gemm(Trans::Yes, Trans::No, 1.0, &v1, &vp, 0.0, &mut z);
            let mut t1 = take_matrix(ws, j0, j0);
            for i in 0..j0 {
                t1.row_mut(i).copy_from_slice(&t.row(i)[..j0]);
            }
            let mut t1z = take_matrix(ws, j0, kb);
            gemm(Trans::No, Trans::No, 1.0, &t1, &z, 0.0, &mut t1z);
            let mut t12 = take_matrix(ws, j0, kb);
            gemm(Trans::No, Trans::No, -1.0, &t1z, &tp, 0.0, &mut t12);
            for i in 0..j0 {
                t.row_mut(i)[j0..j1].copy_from_slice(t12.row(i));
            }
            put_matrix(ws, vp);
            put_matrix(ws, tp);
            put_matrix(ws, v1);
            put_matrix(ws, z);
            put_matrix(ws, t1);
            put_matrix(ws, t1z);
            put_matrix(ws, t12);
        }
        put_matrix(ws, p);
        j0 = j1;
    }
    ws.put(taus);
    ws.put(small);
    ws.put(vn1);
    ws.put(vn2);

    // R = leading n × n upper triangle; `work` becomes the explicit V.
    let r = work.submatrix(0, n, 0, n).upper_triangular_part();
    for i in 0..n {
        let row = work.row_mut(i);
        for item in row.iter_mut().take(n).skip(i) {
            *item = 0.0;
        }
        row[i] = 1.0;
    }
    let rank = detected_rank(&r, rank_tolerance(m, n));

    PivotedQr {
        q_factors: Reflector {
            v: work,
            t,
            r: r.clone(),
        },
        r,
        perm,
        rank,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul_tn;
    use crate::qr::{q_times, random_with_condition, thin_q};
    use crate::scratch::LocalArena;

    fn check_pivoted(a: &Matrix, tol: f64) -> PivotedQr {
        let (m, n) = (a.rows(), a.cols());
        let p = geqp3(a);
        assert!(is_permutation(&p.perm, n), "perm is a permutation");
        assert!(p.r.is_upper_triangular(0.0), "R upper triangular");
        for j in 0..n {
            assert!(p.r[(j, j)] >= 0.0, "R diagonal nonnegative");
            if j > 0 {
                assert!(
                    p.r[(j, j)] <= p.r[(j - 1, j - 1)] * (1.0 + 1e-12) + 1e-14,
                    "R diagonal decays monotonically: r[{j}] = {} > r[{}] = {}",
                    p.r[(j, j)],
                    j - 1,
                    p.r[(j - 1, j - 1)]
                );
            }
        }
        assert!(p.q_factors.v.is_unit_lower_trapezoidal(tol));
        assert_eq!(p.q_factors.r, p.r, "the two R views are the same matrix");
        // A·P = Q·[R; 0].
        let ap = permute_cols(a, &p.perm);
        let mut rn = Matrix::zeros(m, n);
        rn.set_submatrix(0, 0, &p.r);
        let qr = q_times(&p.q_factors.v, &p.q_factors.t, &rn);
        let err = qr.sub(&ap).max_abs();
        assert!(err <= tol * (1.0 + a.max_abs()), "A·P = QR: err {err}");
        // Q orthonormal at any rank.
        let q1 = thin_q(&p.q_factors.v, &p.q_factors.t);
        let orth = matmul_tn(&q1, &q1).sub(&Matrix::identity(n)).max_abs();
        assert!(orth <= tol, "QᵀQ = I: {orth}");
        p
    }

    #[test]
    fn full_rank_random_detects_full_rank() {
        for (m, n, seed) in [(20usize, 5usize, 1u64), (48, 48, 2), (400, 37, 3)] {
            let a = Matrix::random(m, n, seed);
            let p = check_pivoted(&a, 1e-10);
            assert_eq!(p.rank, n, "{m}×{n}: random matrices are full rank");
        }
    }

    #[test]
    fn constructed_rank_k_is_detected_exactly() {
        // A = B·C with B (m × k), C (k × n): rank exactly k.
        for (m, n, k, seed) in [
            (40usize, 10usize, 3usize, 4u64),
            (96, 24, 7, 5),
            (64, 16, 1, 6),
        ] {
            let b = Matrix::random(m, k, seed);
            let c = Matrix::random(k, n, seed + 100);
            let a = crate::gemm::matmul(&b, &c);
            let p = check_pivoted(&a, 1e-10);
            assert_eq!(p.rank, k, "{m}×{n} rank-{k}: detected {}", p.rank);
        }
    }

    #[test]
    fn duplicate_columns_are_revealed() {
        let c = Matrix::random(30, 2, 7);
        let a = c.hstack(&c).hstack(&c);
        let p = check_pivoted(&a, 1e-11);
        assert_eq!(p.rank, 2);
    }

    #[test]
    fn zero_matrix_has_rank_zero() {
        let p = check_pivoted(&Matrix::zeros(6, 3), 1e-14);
        assert_eq!(p.rank, 0);
        assert_eq!(p.r.max_abs(), 0.0);
    }

    #[test]
    fn zero_columns_are_fine() {
        let p = geqp3(&Matrix::zeros(4, 0));
        assert_eq!(p.rank, 0);
        assert!(p.perm.is_empty());
    }

    #[test]
    fn graded_sigma_keeps_full_rank_above_tolerance() {
        // κ = 1e6 ≪ 1/rank_tolerance: every singular value is
        // detectable, so the detected rank stays n.
        let a = random_with_condition(96, 8, 1e6, 8);
        let p = check_pivoted(&a, 1e-10);
        assert_eq!(p.rank, 8);
    }

    #[test]
    fn pivoting_spans_multiple_panels() {
        let nb = BlockParams::active().pivot_nb;
        let n = 2 * nb + 5;
        let a = Matrix::random(3 * n, n, 9);
        let p = check_pivoted(&a, 1e-9);
        assert_eq!(p.rank, n);
        // And a rank-deficient multi-panel case.
        let k = nb + 3;
        let b = Matrix::random(3 * n, k, 10);
        let c = Matrix::random(k, n, 11);
        let low = crate::gemm::matmul(&b, &c);
        let p = check_pivoted(&low, 1e-8);
        assert_eq!(p.rank, k);
    }

    #[test]
    fn matches_unpivoted_qr_on_prepermuted_input() {
        // geqp3(A) and geqrt(A·P) factor the same matrix; their R's
        // agree to rounding (both use the same Householder convention).
        let a = Matrix::random(30, 6, 12);
        let p = geqp3(&a);
        let ap = permute_cols(&a, &p.perm);
        let f = crate::qr::geqrt(&ap);
        let err = f.r.sub(&p.r).max_abs();
        assert!(err < 1e-11, "R of geqp3 vs geqrt on A·P: {err}");
    }

    #[test]
    fn cancellation_safeguard_path_still_factors() {
        // Columns with hugely disparate scales force downdates that
        // cancel almost completely — the recompute path must keep the
        // factorization exact.
        let n = 12;
        let mut a = Matrix::random(40, n, 13);
        for j in 0..n {
            let scale = if j % 2 == 0 { 1.0 } else { 1e-12 };
            for i in 0..40 {
                a[(i, j)] *= scale;
            }
        }
        let p = check_pivoted(&a, 1e-10);
        assert_eq!(p.rank, n, "tiny-but-independent columns still count");
    }

    #[test]
    fn geqp3_ws_reuses_its_arena() {
        let mut ws = LocalArena::new();
        let nb = BlockParams::active().pivot_nb;
        let a = Matrix::random(3 * nb, 2 * nb, 14);
        let _ = geqp3_ws(&mut ws, &a);
        let _ = geqp3_ws(&mut ws, &a);
        let (_, misses_warm) = ws.stats();
        let _ = geqp3_ws(&mut ws, &a);
        let (_, misses_after) = ws.stats();
        assert_eq!(
            misses_warm, misses_after,
            "a warm geqp3_ws must allocate no scratch"
        );
    }

    #[test]
    fn detected_rank_reads_decay() {
        let r = Matrix::from_fn(4, 4, |i, j| {
            if i == j {
                [4.0, 2.0, 1e-18, 0.0][i]
            } else if j > i {
                0.5
            } else {
                0.0
            }
        });
        assert_eq!(detected_rank(&r, 1e-12), 2);
        assert_eq!(detected_rank(&Matrix::zeros(3, 3), 1e-12), 0);
        assert_eq!(detected_rank(&Matrix::identity(5), 1e-12), 5);
    }

    #[test]
    fn permutation_helpers() {
        assert!(is_permutation(&[2, 0, 1], 3));
        assert!(!is_permutation(&[0, 0, 1], 3));
        assert!(!is_permutation(&[0, 3, 1], 3));
        assert!(!is_permutation(&[0, 1], 3));
        let a = Matrix::from_fn(2, 3, |i, j| (10 * i + j) as f64);
        let ap = permute_cols(&a, &[2, 0, 1]);
        assert_eq!(ap[(0, 0)], 2.0);
        assert_eq!(ap[(1, 1)], 10.0);
        assert_eq!(ap[(0, 2)], 1.0);
    }

    #[test]
    #[should_panic(expected = "m ≥ n")]
    fn wide_rejected() {
        let _ = geqp3(&Matrix::zeros(2, 5));
    }
}
