//! Out-of-core tile storage: fixed-size `f64` tiles behind a
//! [`TileStore`], so matrices larger than memory can flow through the
//! existing kernels panel-by-panel.
//!
//! The 3D algorithm's tile structure extends directly to matrices that
//! do not fit in RAM: the data plane becomes a keyed store of
//! `tile × tile` blocks, and the sequential communication-avoiding QR
//! schedule (Demmel et al.) walks them one column panel at a time. Three
//! pieces:
//!
//! * [`TileStore`] — get/put/pin/flush over fixed-size tiles keyed by
//!   `(block_row, block_col)`. Absent tiles read as zeros; `put` marks a
//!   tile dirty; pinned tiles are guaranteed resident until unpinned.
//! * [`MemStore`] — the always-resident reference implementation.
//! * [`SpillStore`] — bounds resident bytes (`QR3D_TILE_CACHE_BYTES`),
//!   evicts clean tiles LRU, writes dirty tiles through to a per-store
//!   temp file (plain `std::fs` seek-offset I/O) before they leave
//!   memory, and honors sequential [`TileStore::prefetch`] hints from
//!   the panel schedule. Tiles round-trip the file as raw `f64` bit
//!   patterns, so a spilled tile reads back **bitwise** what was
//!   written.
//! * [`TiledMatrix`] — adapts a store to the dense kernels: it
//!   materializes pinned tile ranges as contiguous [`Matrix`] panels, so
//!   `geqrt`/`gemm`/`trsm` run unmodified, and writes results back
//!   tile-by-tile. [`geqrt_out_of_core`] is the left-looking panel
//!   sweep built on it.
//!
//! The eviction byte cap is **best-effort**: pinned tiles never evict,
//! so a working set of pins larger than the cap is allowed to exceed it
//! (the alternative — refusing the pin — would deadlock every panel
//! schedule whose panel exceeds the cache). `SpillStore::resident_bytes`
//! plus the scratch arenas' `peak_bytes` watermark give callers the real
//! footprint to budget against.

use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::dense::Matrix;
use crate::gemm::{gemm, Trans};
use crate::qr::{apply_block_reflector, apply_block_reflector_ws, geqrt_ws};
use crate::scratch::{with_thread_arena, ScratchArena};

/// A tile's coordinates: `(block_row, block_col)` in units of tiles.
pub type TileKey = (usize, usize);

/// Default resident-byte bound of a [`SpillStore`] when
/// `QR3D_TILE_CACHE_BYTES` is unset or unparsable: 64 MiB.
pub const TILE_CACHE_BYTES_DEFAULT: usize = 64 << 20;

/// Resolve the spill cache's resident-byte bound from an environment
/// lookup: `QR3D_TILE_CACHE_BYTES` (integer ≥ 1) or
/// [`TILE_CACHE_BYTES_DEFAULT`]. Read at store construction, not frozen
/// per process, so tests can build stores under different caps.
pub fn tile_cache_bytes_from_lookup(lookup: impl Fn(&str) -> Option<String>) -> usize {
    match lookup("QR3D_TILE_CACHE_BYTES").and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(b) if b >= 1 => b,
        _ => TILE_CACHE_BYTES_DEFAULT,
    }
}

/// [`tile_cache_bytes_from_lookup`] over the process environment.
pub fn tile_cache_bytes_from_env() -> usize {
    tile_cache_bytes_from_lookup(|k| std::env::var(k).ok())
}

/// Fixed-size `f64` tile storage keyed by `(block_row, block_col)`.
///
/// Contract shared by every implementation:
/// * a tile never written reads as zeros;
/// * `get` after `put` returns **bitwise** what was written, however
///   many evictions/flushes happened in between;
/// * a pinned tile stays resident (never evicted) until unpinned;
/// * dirty tiles are never dropped — eviction persists them first.
pub trait TileStore {
    /// Words (`f64`s) per tile — every `get`/`put` buffer is exactly
    /// this long.
    fn tile_len(&self) -> usize;
    /// Copy tile `key` into `out` (`out.len() == tile_len()`); zeros if
    /// the tile was never written.
    fn get(&mut self, key: TileKey, out: &mut [f64]);
    /// Overwrite tile `key` from `data` (`data.len() == tile_len()`),
    /// marking it dirty.
    fn put(&mut self, key: TileKey, data: &[f64]);
    /// Make `key` resident and hold it there; pins nest.
    fn pin(&mut self, key: TileKey);
    /// Release one pin on `key`. Ignored for unpinned tiles.
    fn unpin(&mut self, key: TileKey);
    /// Persist every dirty tile to backing storage (no-op where memory
    /// *is* the backing storage).
    fn flush(&mut self);
    /// Hint that `keys` will be accessed soon, in order. Best-effort:
    /// an implementation may fault them in while it has spare capacity,
    /// but never evicts to make room for a hint.
    fn prefetch(&mut self, keys: &[TileKey]) {
        let _ = keys;
    }
    /// Bytes currently resident in memory.
    fn resident_bytes(&self) -> usize;
}

/// Always-resident [`TileStore`]: a `HashMap` of tiles, the reference
/// implementation every bounded store must match bitwise.
#[derive(Debug)]
pub struct MemStore {
    tile_len: usize,
    tiles: HashMap<TileKey, Vec<f64>>,
    pins: HashMap<TileKey, usize>,
}

impl MemStore {
    /// An empty store of `tile_len`-word tiles.
    pub fn new(tile_len: usize) -> Self {
        assert!(tile_len >= 1, "MemStore: tile_len must be ≥ 1");
        MemStore {
            tile_len,
            tiles: HashMap::new(),
            pins: HashMap::new(),
        }
    }

    /// Pins currently held on `key` (for invariant tests).
    pub fn pin_count(&self, key: TileKey) -> usize {
        self.pins.get(&key).copied().unwrap_or(0)
    }
}

impl TileStore for MemStore {
    fn tile_len(&self) -> usize {
        self.tile_len
    }

    fn get(&mut self, key: TileKey, out: &mut [f64]) {
        assert_eq!(out.len(), self.tile_len, "MemStore::get: buffer length");
        match self.tiles.get(&key) {
            Some(t) => out.copy_from_slice(t),
            None => out.fill(0.0),
        }
    }

    fn put(&mut self, key: TileKey, data: &[f64]) {
        assert_eq!(data.len(), self.tile_len, "MemStore::put: buffer length");
        self.tiles.insert(key, data.to_vec());
    }

    fn pin(&mut self, key: TileKey) {
        *self.pins.entry(key).or_insert(0) += 1;
    }

    fn unpin(&mut self, key: TileKey) {
        if let Some(p) = self.pins.get_mut(&key) {
            *p -= 1;
            if *p == 0 {
                self.pins.remove(&key);
            }
        }
    }

    fn flush(&mut self) {}

    fn resident_bytes(&self) -> usize {
        self.tiles.len() * self.tile_len * size_of::<f64>()
    }
}

/// Counters a [`SpillStore`] keeps about its cache behavior.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SpillStats {
    /// `get`/`put`/`pin` calls served from resident tiles.
    pub hits: u64,
    /// Calls that had to fault a tile in from the spill file.
    pub misses: u64,
    /// Tiles evicted to stay under the byte cap.
    pub evictions: u64,
    /// Dirty tiles written through to the spill file.
    pub spill_writes: u64,
    /// Tiles read back from the spill file.
    pub spill_reads: u64,
    /// Tiles faulted in by [`TileStore::prefetch`] hints.
    pub prefetched: u64,
}

#[derive(Debug)]
struct ResidentTile {
    data: Vec<f64>,
    dirty: bool,
    pins: usize,
    last_use: u64,
    /// Slot in the spill file holding this tile's last persisted bytes,
    /// if it was ever spilled or flushed.
    slot: Option<u64>,
}

static SPILL_STORE_ID: AtomicU64 = AtomicU64::new(0);

/// Bounded-residency [`TileStore`]: keeps at most `cap_bytes` of tiles
/// in memory (best-effort — see the module docs on pins), evicting
/// clean tiles LRU and writing dirty tiles through to a per-store temp
/// file first. See the trait docs for the bitwise read-back contract.
#[derive(Debug)]
pub struct SpillStore {
    tile_len: usize,
    cap_bytes: usize,
    resident: HashMap<TileKey, ResidentTile>,
    resident_bytes: usize,
    /// Non-resident tiles: key → file slot holding their bytes.
    spilled: HashMap<TileKey, u64>,
    free_slots: Vec<u64>,
    next_slot: u64,
    file: Option<File>,
    path: Option<PathBuf>,
    clock: u64,
    stats: SpillStats,
}

impl SpillStore {
    /// A store of `tile_len`-word tiles whose resident bound comes from
    /// `QR3D_TILE_CACHE_BYTES` (read now, at construction).
    pub fn new(tile_len: usize) -> Self {
        SpillStore::with_capacity(tile_len, tile_cache_bytes_from_env())
    }

    /// A store of `tile_len`-word tiles keeping at most `cap_bytes`
    /// resident. A cap smaller than one tile degenerates to "evict
    /// everything unpinned after use" — still correct, maximally slow.
    pub fn with_capacity(tile_len: usize, cap_bytes: usize) -> Self {
        assert!(tile_len >= 1, "SpillStore: tile_len must be ≥ 1");
        assert!(cap_bytes >= 1, "SpillStore: cap_bytes must be ≥ 1");
        SpillStore {
            tile_len,
            cap_bytes,
            resident: HashMap::new(),
            resident_bytes: 0,
            spilled: HashMap::new(),
            free_slots: Vec::new(),
            next_slot: 0,
            file: None,
            path: None,
            clock: 0,
            stats: SpillStats::default(),
        }
    }

    /// The resident-byte bound this store was built with.
    pub fn cap_bytes(&self) -> usize {
        self.cap_bytes
    }

    /// Cache-behavior counters accumulated so far.
    pub fn stats(&self) -> SpillStats {
        self.stats
    }

    /// Whether `key` is currently resident (for invariant tests).
    pub fn is_resident(&self, key: TileKey) -> bool {
        self.resident.contains_key(&key)
    }

    /// Pins currently held on `key` (for invariant tests).
    pub fn pin_count(&self, key: TileKey) -> usize {
        self.resident.get(&key).map_or(0, |t| t.pins)
    }

    /// Evict every unpinned tile now — dirty ones spill first — freeing
    /// the cache between schedule phases (and giving prefetch hints
    /// room to work with).
    pub fn evict_unpinned(&mut self) {
        while self.evict_one() {}
    }

    fn tile_bytes(&self) -> usize {
        self.tile_len * size_of::<f64>()
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// The spill file, created on first use under the OS temp dir.
    fn file(&mut self) -> &mut File {
        if self.file.is_none() {
            let id = SPILL_STORE_ID.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir().join(format!(
                "qr3d-spill-{}-{}.tiles",
                std::process::id(),
                id
            ));
            let file = File::options()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)
                .unwrap_or_else(|e| panic!("SpillStore: cannot open {}: {e}", path.display()));
            self.file = Some(file);
            self.path = Some(path);
        }
        self.file.as_mut().expect("spill file just ensured")
    }

    fn alloc_slot(&mut self) -> u64 {
        self.free_slots.pop().unwrap_or_else(|| {
            let s = self.next_slot;
            self.next_slot += 1;
            s
        })
    }

    /// Persist `data` at `slot`, as raw little-endian `f64` bit patterns
    /// (the round-trip is bit-exact, including NaN payloads and −0.0).
    fn write_slot(&mut self, slot: u64, data: &[f64]) {
        let bytes = self.tile_bytes();
        let mut buf = vec![0u8; bytes];
        for (chunk, &x) in buf.chunks_exact_mut(size_of::<f64>()).zip(data) {
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        let file = self.file();
        file.seek(SeekFrom::Start(slot * bytes as u64))
            .expect("SpillStore: seek for write");
        file.write_all(&buf).expect("SpillStore: spill write");
        self.stats.spill_writes += 1;
    }

    fn read_slot(&mut self, slot: u64) -> Vec<f64> {
        let bytes = self.tile_bytes();
        let mut buf = vec![0u8; bytes];
        let file = self.file();
        file.seek(SeekFrom::Start(slot * bytes as u64))
            .expect("SpillStore: seek for read");
        file.read_exact(&mut buf).expect("SpillStore: spill read");
        let data = buf
            .chunks_exact(size_of::<f64>())
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect();
        self.stats.spill_reads += 1;
        data
    }

    /// Evict the single LRU unpinned tile (dirty tiles spill to the
    /// file first). `false` if everything resident is pinned.
    fn evict_one(&mut self) -> bool {
        let victim = self
            .resident
            .iter()
            .filter(|(_, t)| t.pins == 0)
            .min_by_key(|(_, t)| t.last_use)
            .map(|(&k, _)| k);
        let Some(key) = victim else {
            return false;
        };
        let mut tile = self.resident.remove(&key).expect("victim is resident");
        self.resident_bytes -= self.tile_bytes();
        self.stats.evictions += 1;
        if tile.dirty {
            let slot = tile.slot.unwrap_or_else(|| self.alloc_slot());
            self.write_slot(slot, &tile.data);
            tile.slot = Some(slot);
        }
        match tile.slot {
            // The file holds these bits (just written, or still clean).
            Some(slot) => {
                self.spilled.insert(key, slot);
            }
            // Clean and never persisted: an all-zero pin-created tile;
            // dropping it preserves "absent reads zeros".
            None => debug_assert!(tile.data.iter().all(|&x| x == 0.0)),
        }
        true
    }

    /// Evict unpinned LRU tiles until one more tile fits under the cap
    /// (or nothing evictable remains — pinned tiles never leave).
    fn make_room(&mut self) {
        while self.resident_bytes + self.tile_bytes() > self.cap_bytes {
            if !self.evict_one() {
                return; // everything resident is pinned: overflow, never deadlock
            }
        }
    }

    /// Make `key` resident (faulting it in from the spill file, or as a
    /// fresh zero tile) and return whether it already existed anywhere.
    fn fault_in(&mut self, key: TileKey) {
        if self.resident.contains_key(&key) {
            self.stats.hits += 1;
            let t = self.tick();
            self.resident
                .get_mut(&key)
                .expect("resident checked")
                .last_use = t;
            return;
        }
        self.stats.misses += 1;
        self.make_room();
        let (data, slot) = match self.spilled.remove(&key) {
            Some(slot) => (self.read_slot(slot), Some(slot)),
            None => (vec![0.0; self.tile_len], None),
        };
        let last_use = self.tick();
        self.resident.insert(
            key,
            ResidentTile {
                data,
                dirty: false,
                pins: 0,
                last_use,
                slot,
            },
        );
        self.resident_bytes += self.tile_bytes();
    }
}

impl TileStore for SpillStore {
    fn tile_len(&self) -> usize {
        self.tile_len
    }

    fn get(&mut self, key: TileKey, out: &mut [f64]) {
        assert_eq!(out.len(), self.tile_len, "SpillStore::get: buffer length");
        if !self.resident.contains_key(&key) && !self.spilled.contains_key(&key) {
            // Never written: zeros, without spending cache on it.
            self.stats.hits += 1;
            out.fill(0.0);
            return;
        }
        self.fault_in(key);
        out.copy_from_slice(&self.resident[&key].data);
    }

    fn put(&mut self, key: TileKey, data: &[f64]) {
        assert_eq!(data.len(), self.tile_len, "SpillStore::put: buffer length");
        if let Some(t) = self.resident.get_mut(&key) {
            self.stats.hits += 1;
            t.data.copy_from_slice(data);
            t.dirty = true;
            let tick = self.tick();
            self.resident.get_mut(&key).expect("resident").last_use = tick;
            return;
        }
        self.stats.misses += 1;
        self.make_room();
        // A previously spilled tile keeps its slot; the overwrite makes
        // the file bytes stale, which `dirty` records.
        let slot = self.spilled.remove(&key);
        let last_use = self.tick();
        self.resident.insert(
            key,
            ResidentTile {
                data: data.to_vec(),
                dirty: true,
                pins: 0,
                last_use,
                slot,
            },
        );
        self.resident_bytes += self.tile_bytes();
    }

    fn pin(&mut self, key: TileKey) {
        self.fault_in(key);
        self.resident.get_mut(&key).expect("just faulted in").pins += 1;
    }

    fn unpin(&mut self, key: TileKey) {
        if let Some(t) = self.resident.get_mut(&key) {
            if t.pins > 0 {
                t.pins -= 1;
            }
        }
        // A pinned working set may have overflowed the cap (see the
        // module docs); releasing pins is the moment to trim back.
        while self.resident_bytes > self.cap_bytes {
            if !self.evict_one() {
                break;
            }
        }
    }

    fn flush(&mut self) {
        let dirty: Vec<TileKey> = self
            .resident
            .iter()
            .filter(|(_, t)| t.dirty)
            .map(|(&k, _)| k)
            .collect();
        for key in dirty {
            let slot = self.resident[&key]
                .slot
                .unwrap_or_else(|| self.alloc_slot());
            let data = std::mem::take(&mut self.resident.get_mut(&key).expect("dirty").data);
            self.write_slot(slot, &data);
            let t = self.resident.get_mut(&key).expect("dirty");
            t.data = data;
            t.slot = Some(slot);
            t.dirty = false;
        }
        if let Some(f) = self.file.as_mut() {
            f.flush().expect("SpillStore: flush");
        }
    }

    fn prefetch(&mut self, keys: &[TileKey]) {
        // Fault hinted tiles in while there is spare capacity; never
        // evict for a hint (the demand stream owns the cache).
        let tile_bytes = self.tile_bytes();
        for &key in keys {
            if self.resident.contains_key(&key) {
                continue;
            }
            if !self.spilled.contains_key(&key) {
                continue; // absent tiles read zeros without residency
            }
            if self.resident_bytes + tile_bytes > self.cap_bytes {
                break; // hints stop at the cap, in schedule order
            }
            self.fault_in(key);
            // fault_in counted a demand miss; reclassify as prefetch.
            self.stats.misses -= 1;
            self.stats.prefetched += 1;
        }
    }

    fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        self.file = None; // close before unlink, for portability
        if let Some(path) = self.path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A dense `rows × cols` matrix stored as `tile × tile` blocks in a
/// [`TileStore`] (edge tiles zero-padded). Materializes arbitrary
/// ranges as contiguous [`Matrix`] panels — pinning the covered tiles
/// for the duration — so the dense kernels run unmodified on them.
#[derive(Debug)]
pub struct TiledMatrix<S: TileStore> {
    store: S,
    rows: usize,
    cols: usize,
    tile: usize,
}

impl<S: TileStore> TiledMatrix<S> {
    /// An all-zero `rows × cols` tiled matrix over `store`, whose
    /// `tile_len` must be `tile × tile`.
    pub fn new(store: S, rows: usize, cols: usize, tile: usize) -> Self {
        assert!(tile >= 1, "TiledMatrix: tile must be ≥ 1");
        assert_eq!(
            store.tile_len(),
            tile * tile,
            "TiledMatrix: store tile_len must be tile²"
        );
        assert!(rows >= 1 && cols >= 1, "TiledMatrix: empty shape");
        TiledMatrix {
            store,
            rows,
            cols,
            tile,
        }
    }

    /// Tile `a` into `store` (writing every covered tile).
    pub fn from_matrix(store: S, a: &Matrix, tile: usize) -> Self {
        let mut tm = TiledMatrix::new(store, a.rows(), a.cols(), tile);
        tm.write_block(0, 0, a);
        tm
    }

    /// Row count of the dense view.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count of the dense view.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Tile edge length (tiles hold `tile × tile` words).
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// The underlying store (stats, residency queries).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The underlying store, mutably (flush, explicit pins).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Consume the view, returning the store.
    pub fn into_store(self) -> S {
        self.store
    }

    /// Tile keys covering rows `r0..r1` × cols `c0..c1`, row-major.
    fn covering(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Vec<TileKey> {
        let (br0, br1) = (r0 / self.tile, (r1 - 1) / self.tile);
        let (bc0, bc1) = (c0 / self.tile, (c1 - 1) / self.tile);
        let mut keys = Vec::with_capacity((br1 - br0 + 1) * (bc1 - bc0 + 1));
        for br in br0..=br1 {
            for bc in bc0..=bc1 {
                keys.push((br, bc));
            }
        }
        keys
    }

    /// Materialize rows `r0..r1` × cols `c0..c1` as a dense matrix. The
    /// covered tiles are pinned while read and unpinned before return.
    pub fn read_block(&mut self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(r0 < r1 && r1 <= self.rows, "read_block: row range");
        assert!(c0 < c1 && c1 <= self.cols, "read_block: col range");
        let keys = self.covering(r0, r1, c0, c1);
        for &k in &keys {
            self.store.pin(k);
        }
        let mut out = Matrix::zeros(r1 - r0, c1 - c0);
        let mut buf = vec![0.0; self.store.tile_len()];
        for &(br, bc) in &keys {
            self.store.get((br, bc), &mut buf);
            let (tr0, tc0) = (br * self.tile, bc * self.tile);
            let ir0 = tr0.max(r0);
            let ir1 = (tr0 + self.tile).min(r1);
            let ic0 = tc0.max(c0);
            let ic1 = (tc0 + self.tile).min(c1);
            for i in ir0..ir1 {
                let src = &buf[(i - tr0) * self.tile + (ic0 - tc0)..][..ic1 - ic0];
                out.row_mut(i - r0)[ic0 - c0..ic1 - c0].copy_from_slice(src);
            }
        }
        for &k in &keys {
            self.store.unpin(k);
        }
        out
    }

    /// Write `block` at `(r0, c0)`, read-modify-writing partially
    /// covered tiles. The covered tiles are pinned for the duration.
    pub fn write_block(&mut self, r0: usize, c0: usize, block: &Matrix) {
        let (r1, c1) = (r0 + block.rows(), c0 + block.cols());
        assert!(r1 <= self.rows && c1 <= self.cols, "write_block: range");
        let keys = self.covering(r0, r1, c0, c1);
        for &k in &keys {
            self.store.pin(k);
        }
        let mut buf = vec![0.0; self.store.tile_len()];
        for &(br, bc) in &keys {
            self.store.get((br, bc), &mut buf);
            let (tr0, tc0) = (br * self.tile, bc * self.tile);
            let ir0 = tr0.max(r0);
            let ir1 = (tr0 + self.tile).min(r1);
            let ic0 = tc0.max(c0);
            let ic1 = (tc0 + self.tile).min(c1);
            for i in ir0..ir1 {
                let dst = &mut buf[(i - tr0) * self.tile + (ic0 - tc0)..][..ic1 - ic0];
                dst.copy_from_slice(&block.row(i - r0)[ic0 - c0..ic1 - c0]);
            }
            self.store.put((br, bc), &buf);
        }
        for &k in &keys {
            self.store.unpin(k);
        }
    }

    /// The whole dense matrix (for tests and final results).
    pub fn to_matrix(&mut self) -> Matrix {
        self.read_block(0, self.rows, 0, self.cols)
    }

    /// Hint the store that cols `c0..c1` (all rows) are next in the
    /// panel schedule.
    pub fn prefetch_cols(&mut self, c0: usize, c1: usize) {
        if c0 >= c1 || c0 >= self.cols {
            return;
        }
        let keys = self.covering(0, self.rows, c0, c1.min(self.cols));
        self.store.prefetch(&keys);
    }
}

/// The factors of an out-of-core left-looking panel QR: per-panel
/// compact-WY blocks `(Vᵢ, Tᵢ)` (panel `i` acting on rows
/// `i·w..m`) and the assembled `n × n` upper-triangular `R`.
#[derive(Debug, Clone)]
pub struct OocQr {
    /// Per-panel reflector blocks, in factorization order.
    pub panels: Vec<(Matrix, Matrix)>,
    /// The assembled upper-triangular factor.
    pub r: Matrix,
    /// Panel width `w` (the tile edge of the swept matrix).
    pub panel_width: usize,
}

impl OocQr {
    /// Apply `Qᵀ` to an `m × k` matrix (panels in factorization order).
    pub fn qt_times(&self, c: &Matrix) -> Matrix {
        let mut out = c.clone();
        for (i, (v, t)) in self.panels.iter().enumerate() {
            let i0 = i * self.panel_width;
            let mut tail = out.submatrix(i0, out.rows(), 0, out.cols());
            apply_block_reflector(v, t, &mut tail, true);
            out.set_submatrix(i0, 0, &tail);
        }
        out
    }

    /// Apply `Q` to an `m × k` matrix (panels in reverse order).
    pub fn q_times(&self, c: &Matrix) -> Matrix {
        let mut out = c.clone();
        for (i, (v, t)) in self.panels.iter().enumerate().rev() {
            let i0 = i * self.panel_width;
            let mut tail = out.submatrix(i0, out.rows(), 0, out.cols());
            apply_block_reflector(v, t, &mut tail, false);
            out.set_submatrix(i0, 0, &tail);
        }
        out
    }

    /// The explicit thin `Q` (`m × n`, orthonormal columns).
    pub fn thin_q(&self, m: usize) -> Matrix {
        let n = self.r.rows();
        let mut e = Matrix::zeros(m, n);
        for j in 0..n {
            e[(j, j)] = 1.0;
        }
        self.q_times(&e)
    }

    /// `‖A − Q·R‖_F / ‖A‖_F` — deterministic given the factors, so two
    /// sweeps with bitwise-equal factors report bitwise-equal residuals.
    pub fn residual(&self, a: &Matrix) -> f64 {
        let q = self.thin_q(a.rows());
        let mut qr = Matrix::zeros(a.rows(), a.cols());
        gemm(Trans::No, Trans::No, 1.0, &q, &self.r, 0.0, &mut qr);
        qr.sub_assign(a);
        qr.frobenius_norm() / a.frobenius_norm()
    }
}

/// Left-looking out-of-core QR panel sweep over a tiled `m × n` matrix
/// (`m ≥ n`), panel width = the tile edge: for each column panel, fault
/// it in (prefetching the next panel in schedule order), apply the
/// previous panels' reflectors (`Qᵀ` updates — the *left-looking*
/// order of the sequential CAQR schedule, which writes each panel once
/// instead of re-updating the trailing matrix), factor its subdiagonal
/// part with the unmodified [`crate::qr::geqrt_ws`] kernel, and write
/// the updated panel (R rows over the reflector basis) back through the
/// store.
///
/// The sweep is deterministic in the dense input: every arithmetic
/// operation happens on materialized panels, so a [`SpillStore`] run —
/// whatever its cap, however many tiles spilled — produces factors
/// **bitwise identical** to the [`MemStore`] run.
pub fn geqrt_out_of_core<S: TileStore>(tm: &mut TiledMatrix<S>) -> OocQr {
    with_thread_arena(|ws| geqrt_out_of_core_ws(ws, tm))
}

/// [`geqrt_out_of_core`] with an explicit scratch arena.
pub fn geqrt_out_of_core_ws<S: TileStore>(
    ws: &mut dyn ScratchArena,
    tm: &mut TiledMatrix<S>,
) -> OocQr {
    let (m, n) = (tm.rows(), tm.cols());
    assert!(m >= n, "geqrt_out_of_core requires m ≥ n (got {m} × {n})");
    let w = tm.tile();
    let mut panels: Vec<(Matrix, Matrix)> = Vec::new();
    let mut r = Matrix::zeros(n, n);
    let mut c0 = 0;
    while c0 < n {
        let c1 = (c0 + w).min(n);
        // Sequential schedule: the next panel is known now — hint it.
        tm.prefetch_cols(c1, (c1 + w).min(n));
        let mut panel = tm.read_block(0, m, c0, c1);
        // Left-looking catch-up: apply every previous panel's Qᵀ.
        for (i, (v, t)) in panels.iter().enumerate() {
            let i0 = i * w;
            let mut tail = panel.submatrix(i0, m, 0, c1 - c0);
            apply_block_reflector_ws(ws, v, t, &mut tail, true);
            panel.set_submatrix(i0, 0, &tail);
        }
        // Rows 0..c0 are now final R rows; factor the rest.
        let tail = panel.submatrix(c0, m, 0, c1 - c0);
        let f = geqrt_ws(ws, &tail);
        for i in 0..c0 {
            r.row_mut(i)[c0..c1].copy_from_slice(panel.row(i));
        }
        for i in 0..c1 - c0 {
            r.row_mut(c0 + i)[c0..c1].copy_from_slice(f.r.row(i));
        }
        // Write back what the factorization left in these columns: the
        // finished R rows on top, the reflector basis below — so the
        // store carries the factorization's full state (and a bounded
        // store exercises its dirty-eviction path on every panel).
        panel.set_submatrix(c0, 0, &f.v);
        tm.write_block(0, c0, &panel);
        panels.push((f.v, f.t));
        c0 = c1;
    }
    tm.store_mut().flush();
    OocQr {
        panels,
        r,
        panel_width: w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr::geqrt;

    #[test]
    fn cache_bytes_env_parses_and_defaults() {
        let of = |v: &str| {
            let v = v.to_string();
            move |_: &str| Some(v.clone())
        };
        assert_eq!(
            tile_cache_bytes_from_lookup(|_| None),
            TILE_CACHE_BYTES_DEFAULT
        );
        assert_eq!(tile_cache_bytes_from_lookup(of(" 4096 ")), 4096);
        assert_eq!(
            tile_cache_bytes_from_lookup(of("0")),
            TILE_CACHE_BYTES_DEFAULT
        );
        assert_eq!(
            tile_cache_bytes_from_lookup(of("lots")),
            TILE_CACHE_BYTES_DEFAULT
        );
    }

    #[test]
    fn mem_store_roundtrip_and_zero_default() {
        let mut s = MemStore::new(4);
        let mut out = vec![9.0; 4];
        s.get((3, 5), &mut out);
        assert_eq!(out, vec![0.0; 4]);
        s.put((3, 5), &[1.0, -0.0, f64::MIN_POSITIVE, 4.5]);
        s.get((3, 5), &mut out);
        assert_eq!(out[0], 1.0);
        assert!(out[1] == 0.0 && out[1].is_sign_negative(), "−0.0 preserved");
        assert_eq!(out[2], f64::MIN_POSITIVE);
    }

    #[test]
    fn spill_store_roundtrips_bitwise_through_the_file() {
        // Cap of one tile: every second tile forces an eviction, so the
        // read-back below necessarily travels through the spill file.
        let mut s = SpillStore::with_capacity(3, 3 * size_of::<f64>());
        let tiles: Vec<(TileKey, Vec<f64>)> = (0..6)
            .map(|i| {
                let k = (i, i * 2);
                let v = vec![i as f64 + 0.25, -(i as f64), 1.0 / (i as f64 + 1.0)];
                (k, v)
            })
            .collect();
        for (k, v) in &tiles {
            s.put(*k, v);
        }
        assert!(s.stats().spill_writes >= 5, "evictions spilled dirty tiles");
        let mut out = vec![0.0; 3];
        for (k, v) in &tiles {
            s.get(*k, &mut out);
            for (a, b) in out.iter().zip(v) {
                assert_eq!(a.to_bits(), b.to_bits(), "file round-trip is bitwise");
            }
        }
        assert!(s.stats().spill_reads >= 5);
        assert!(s.resident_bytes() <= s.cap_bytes());
    }

    #[test]
    fn pinned_tiles_survive_a_full_cache_and_exceed_the_cap() {
        let mut s = SpillStore::with_capacity(2, 2 * size_of::<f64>());
        s.put((0, 0), &[1.0, 2.0]);
        s.pin((0, 0));
        // Streaming more tiles than the cap cannot evict the pin.
        for i in 1..10 {
            s.put((i, 0), &[i as f64, 0.0]);
        }
        assert!(s.is_resident((0, 0)), "pinned tile never evicts");
        assert!(
            s.resident_bytes() > 0,
            "pin keeps at least its own tile resident"
        );
        s.unpin((0, 0));
        for i in 10..14 {
            s.put((i, 0), &[0.0, 0.0]);
        }
        let mut out = vec![0.0; 2];
        s.get((0, 0), &mut out);
        assert_eq!(out, vec![1.0, 2.0], "unpinned tile spilled, not dropped");
    }

    #[test]
    fn flush_persists_then_clean_eviction_skips_rewrite() {
        let mut s = SpillStore::with_capacity(2, 4 * 2 * size_of::<f64>());
        for i in 0..4 {
            s.put((i, 0), &[i as f64, 1.0]);
        }
        s.flush();
        let writes = s.stats().spill_writes;
        assert_eq!(writes, 4, "flush wrote each dirty tile once");
        // Clean tiles evict without touching the file again.
        for i in 4..8 {
            s.put((i, 0), &[0.0, 0.0]);
        }
        assert!(s.stats().evictions >= 4);
        assert_eq!(
            s.stats().spill_writes,
            writes,
            "evicting the flushed (clean) tiles must not rewrite them"
        );
        let mut out = vec![0.0; 2];
        s.get((2, 0), &mut out);
        assert_eq!(out, vec![2.0, 1.0], "flushed bytes read back");
    }

    #[test]
    fn prefetch_faults_in_without_evicting() {
        let mut s = SpillStore::with_capacity(1, 4 * size_of::<f64>());
        for i in 0..8 {
            s.put((i, 0), &[i as f64]);
        }
        // Drop residency so the hints have spare capacity to fill.
        s.evict_unpinned();
        assert_eq!(s.resident_bytes(), 0);
        let before = s.stats();
        s.prefetch(&[(0, 0), (1, 0), (2, 0), (3, 0), (4, 0), (5, 0)]);
        let after = s.stats();
        assert!(after.prefetched > 0, "spare capacity served some hints");
        assert_eq!(after.evictions, before.evictions, "hints never evict");
        assert!(s.resident_bytes() <= s.cap_bytes());
        // A hinted tile now hits (the hints ran in schedule order, so
        // the first hinted keys are the resident ones).
        let mut out = vec![0.0];
        let h = s.stats().hits;
        s.get((0, 0), &mut out);
        assert_eq!(out, vec![0.0]);
        s.get((2, 0), &mut out);
        assert_eq!(out, vec![2.0]);
        assert_eq!(s.stats().hits, h + 2);
    }

    #[test]
    fn tiled_matrix_roundtrips_bitwise_on_both_stores() {
        let a = Matrix::random(13, 9, 42); // deliberately tile-ragged
        for tile in [1usize, 3, 4, 16] {
            let mut mem = TiledMatrix::from_matrix(MemStore::new(tile * tile), &a, tile);
            let spill = SpillStore::with_capacity(tile * tile, 2 * tile * tile * 8);
            let mut sp = TiledMatrix::from_matrix(spill, &a, tile);
            let am = mem.to_matrix();
            let asp = sp.to_matrix();
            for (x, y) in am.as_slice().iter().zip(a.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in asp.as_slice().iter().zip(a.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn read_write_block_subranges() {
        let a = Matrix::random(10, 10, 7);
        let mut tm = TiledMatrix::from_matrix(MemStore::new(9), &a, 3);
        let b = tm.read_block(2, 7, 3, 9);
        assert_eq!((b.rows(), b.cols()), (5, 6));
        assert_eq!(b[(0, 0)], a[(2, 3)]);
        assert_eq!(b[(4, 5)], a[(6, 8)]);
        let patch = Matrix::from_fn(2, 2, |i, j| (i * 2 + j) as f64 + 100.0);
        tm.write_block(4, 4, &patch);
        let back = tm.to_matrix();
        assert_eq!(back[(4, 4)], 100.0);
        assert_eq!(back[(5, 5)], 103.0);
        assert_eq!(back[(4, 3)], a[(4, 3)], "neighbors untouched");
    }

    #[test]
    fn out_of_core_geqrt_is_accurate() {
        let a = crate::qr::random_with_condition(48, 20, 1e3, 11);
        let mut tm = TiledMatrix::from_matrix(MemStore::new(64), &a, 8);
        let f = geqrt_out_of_core(&mut tm);
        assert!(f.r.is_upper_triangular(0.0), "R strictly upper triangular");
        assert!(f.residual(&a) < 1e-12, "residual {}", f.residual(&a));
        // Q has orthonormal columns.
        let q = f.thin_q(48);
        let mut g = Matrix::zeros(20, 20);
        gemm(Trans::Yes, Trans::No, 1.0, &q, &q, 0.0, &mut g);
        g.sub_assign(&Matrix::identity(20));
        assert!(g.max_abs() < 1e-13);
    }

    #[test]
    fn spill_sweep_matches_mem_sweep_bitwise() {
        // The acceptance gate's unit-level version: a cache far smaller
        // than the matrix (4 tiles of a 6 × 3-tile grid) must not move a
        // bit of the factorization.
        let a = Matrix::random(48, 24, 3);
        let tile = 8usize;
        let mut mem = TiledMatrix::from_matrix(MemStore::new(tile * tile), &a, tile);
        let spill = SpillStore::with_capacity(tile * tile, 4 * tile * tile * 8);
        let mut sp = TiledMatrix::from_matrix(spill, &a, tile);
        let fm = geqrt_out_of_core(&mut mem);
        let fs = geqrt_out_of_core(&mut sp);
        assert!(
            sp.store().stats().evictions > 0,
            "the cap must actually force spills"
        );
        for (x, y) in fm.r.as_slice().iter().zip(fs.r.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "R diverged across stores");
        }
        for ((vm, tm_), (vs, ts)) in fm.panels.iter().zip(&fs.panels) {
            for (x, y) in vm.as_slice().iter().zip(vs.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "V diverged across stores");
            }
            for (x, y) in tm_.as_slice().iter().zip(ts.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "T diverged across stores");
            }
        }
        assert_eq!(
            fm.residual(&a).to_bits(),
            fs.residual(&a).to_bits(),
            "residuals must match bitwise"
        );
    }

    #[test]
    fn single_panel_sweep_matches_plain_geqrt_bitwise() {
        // With one panel covering all columns and no prior reflectors,
        // the sweep *is* geqrt on the dense matrix.
        let a = Matrix::random(24, 6, 9);
        let mut tm = TiledMatrix::from_matrix(MemStore::new(64), &a, 8);
        let f = geqrt_out_of_core(&mut tm);
        let g = geqrt(&a);
        for (x, y) in f.r.as_slice().iter().zip(g.r.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in f.panels[0].0.as_slice().iter().zip(g.v.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn spill_file_is_removed_on_drop() {
        let path;
        {
            let mut s = SpillStore::with_capacity(1, 8);
            s.put((0, 0), &[1.0]);
            s.put((1, 0), &[2.0]); // forces the file into existence
            path = s.path.clone().expect("spill file created");
            assert!(path.exists());
        }
        assert!(!path.exists(), "temp file cleaned up");
    }
}
