//! Householder QR with compact representations (paper Section 2.3).
//!
//! The factorization routine [`geqrt`] returns the *Householder
//! representation* the paper standardizes on: `Q = I − V·T·Vᵀ` with `V`
//! unit lower trapezoidal (`m × n`) and `T` upper triangular (`n × n`)
//! — the compact WY form \[SVL89\] with the (Sca)LAPACK convention \[Pug92\].
//! `R` is returned as the `n × n` upper triangle (the paper's convention
//! (2) of Section 2.3), with nonnegative diagonal.
//!
//! ## Blocked kernel
//!
//! [`geqrt`] is a LAPACK-style *tiled* factorization: panels of
//! [`GEQRT_NB`] columns are factored by an allocation-free unblocked
//! inner kernel working in a contiguous scratch panel, the panel's `T`
//! kernel is accumulated (`larft`), and the trailing matrix is updated
//! once per panel as a block reflector (`larfb`) built from three
//! [`gemm`] calls — so the `O(mn²)` bulk of the work runs through the
//! cache-blocked, register-tiled multiply instead of `n` rank-1
//! updates. All scratch comes from a [`ScratchArena`]: pass a
//! per-rank `qr3d_machine::Workspace` through the `*_ws` entry points
//! (steady-state factorization then allocates nothing per panel), or
//! use the plain wrappers, which fall back to a per-thread arena.
//!
//! [`geqrt_reference`] keeps the seed's unblocked column-at-a-time
//! kernel (mirroring `gemm_reference`) as the correctness baseline and
//! the benchmark reference. Both produce a valid factorization of the
//! same `A` with `R ≥ 0` on the diagonal; the factors agree to rounding
//! (the blocked updates reassociate sums), not bitwise.

use crate::dense::Matrix;
use crate::gemm::{gemm, Trans};
use crate::scratch::{put_matrix, take_matrix, with_thread_arena, ScratchArena};

/// Default panel width of the blocked [`geqrt`] (the ScaLAPACK-style
/// `nb`). The kernels read the runtime value from
/// [`crate::block::BlockParams::active`], overridable via
/// `QR3D_GEQRT_NB`; this constant is the compiled-in default.
pub const GEQRT_NB: usize = 32;

/// A QR factorization in Householder (compact WY) representation:
/// `A = (I − V·T·Vᵀ)·[R; 0]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Reflector {
    /// The `m × n` unit-lower-trapezoidal Householder basis.
    pub v: Matrix,
    /// The `n × n` upper-triangular kernel.
    pub t: Matrix,
    /// The `n × n` upper-triangular R-factor.
    pub r: Matrix,
}

/// Compute a Householder vector: given `x`, returns `(v, tau, mu)` with
/// `v[0] = 1` such that `(I − tau·v·vᵀ)·x = mu·e₁` and `mu = ‖x‖ ≥ 0`
/// (Golub & Van Loan, Algorithm 5.1.1).
fn house(x: &[f64]) -> (Vec<f64>, f64, f64) {
    let n = x.len();
    assert!(n >= 1, "house: empty vector");
    let sigma: f64 = x[1..].iter().map(|&a| a * a).sum();
    let mut v = x.to_vec();
    v[0] = 1.0;
    if sigma == 0.0 {
        if x[0] >= 0.0 {
            (v, 0.0, x[0])
        } else {
            // x = x₀e₁ with x₀ < 0: reflect through e₁ to flip the sign.
            (v, 2.0, -x[0])
        }
    } else {
        let mu = (x[0] * x[0] + sigma).sqrt();
        let v0 = if x[0] <= 0.0 {
            x[0] - mu
        } else {
            -sigma / (x[0] + mu)
        };
        let tau = 2.0 * v0 * v0 / (sigma + v0 * v0);
        for item in v.iter_mut().skip(1) {
            *item /= v0;
        }
        (v, tau, mu)
    }
}

/// Unblocked panel kernel: Householder-factor the contiguous panel `p`
/// in place (vectors below the diagonal, `R` on and above, `‖x‖ ≥ 0` on
/// the diagonal), recording the scalar factors in `taus`. `w` is caller
/// scratch of at least `p.cols()` words; nothing is allocated.
fn factor_panel(p: &mut Matrix, taus: &mut [f64], w: &mut [f64]) {
    let (rows, bw) = (p.rows(), p.cols());
    debug_assert!(rows >= bw && taus.len() >= bw && w.len() >= bw);
    for j in 0..bw {
        let mut sigma = 0.0;
        for i in j + 1..rows {
            let x = p[(i, j)];
            sigma += x * x;
        }
        let x0 = p[(j, j)];
        let (tau, mu) = if sigma == 0.0 {
            // Zero tail: identity for x₀ ≥ 0, sign-flip reflector else
            // (v's tail is already all zero — nothing to scale).
            if x0 >= 0.0 {
                (0.0, x0)
            } else {
                (2.0, -x0)
            }
        } else {
            let mu = (x0 * x0 + sigma).sqrt();
            let v0 = if x0 <= 0.0 {
                x0 - mu
            } else {
                -sigma / (x0 + mu)
            };
            for i in j + 1..rows {
                p[(i, j)] /= v0;
            }
            (2.0 * v0 * v0 / (sigma + v0 * v0), mu)
        };
        taus[j] = tau;
        // In-panel trailing update (I − τ·v·vᵀ) on columns j+1..bw:
        // w_c = (vᵀ·P)_c accumulated row-wise (stride-1), then applied.
        if tau != 0.0 && j + 1 < bw {
            // The three row-contiguous loops run on the dispatched fused
            // axpy (crate::simd) — AVX-512/AVX2/scalar, all bit-identical.
            w[j + 1..bw].copy_from_slice(&p.row(j)[j + 1..bw]);
            for i in j + 1..rows {
                let vij = p[(i, j)];
                crate::simd::fused_axpy(vij, &p.row(i)[j + 1..bw], &mut w[j + 1..bw]);
            }
            crate::simd::fused_axpy(-tau, &w[j + 1..bw], &mut p.row_mut(j)[j + 1..bw]);
            for i in j + 1..rows {
                let vij = p[(i, j)];
                crate::simd::fused_axpy(-(tau * vij), &w[j + 1..bw], &mut p.row_mut(i)[j + 1..bw]);
            }
        }
        p[(j, j)] = mu;
    }
}

/// Forward `larft` for a factored panel: write the panel's `bw × bw`
/// upper-triangular `T` into `t`'s diagonal block at `off`. `z` is
/// caller scratch of at least `p.cols()` words. Shared with the pivoted
/// factorization in [`crate::pivot`], whose panels carry the same
/// storage convention (V below the diagonal, unit diagonal implicit).
pub(crate) fn larft_panel(p: &Matrix, taus: &[f64], t: &mut Matrix, off: usize, z: &mut [f64]) {
    let (rows, bw) = (p.rows(), p.cols());
    for j in 0..bw {
        let tau = taus[j];
        t[(off + j, off + j)] = tau;
        if j > 0 && tau != 0.0 {
            // z_c = V[:, c]ᵀ·v_j over the panel rows ≥ j (v_j has an
            // implicit 1 in row j; V[j, c] for c < j is stored).
            z[..j].copy_from_slice(&p.row(j)[..j]);
            for i in j + 1..rows {
                let vij = p[(i, j)];
                crate::simd::fused_axpy(vij, &p.row(i)[..j], &mut z[..j]);
            }
            // T[0..j, j] = −τ·T[0..j, 0..j]·z (upper-triangular matvec).
            for i in 0..j {
                let mut s = 0.0;
                for (k, &zk) in z[..j].iter().enumerate().skip(i) {
                    s += t[(off + i, off + k)] * zk;
                }
                t[(off + i, off + j)] = -tau * s;
            }
        }
    }
}

/// Householder QR of an `m × n` matrix with `m ≥ n`: the paper's
/// `local-QR` / LAPACK's `geqrt`, blocked as described in the module
/// docs. Returns the compact representation `(V, T, R)`. Scratch comes
/// from the calling thread's arena; use [`geqrt_ws`] to pass an
/// explicit one (e.g. a simulated rank's workspace).
///
/// # Panics
/// If `m < n`.
pub fn geqrt(a: &Matrix) -> Reflector {
    with_thread_arena(|ws| geqrt_ws(ws, a))
}

/// [`geqrt`] with an explicit scratch arena: after warm-up, the
/// factorization allocates only its three output matrices.
pub fn geqrt_ws(ws: &mut dyn ScratchArena, a: &Matrix) -> Reflector {
    let (m, n) = (a.rows(), a.cols());
    assert!(m >= n, "geqrt requires m ≥ n (got {m} × {n})");
    if n == 0 {
        return Reflector {
            v: Matrix::zeros(m, 0),
            t: Matrix::zeros(0, 0),
            r: Matrix::zeros(0, 0),
        };
    }

    let nb = crate::block::BlockParams::active().geqrt_nb;
    // `work` accumulates V below the diagonal and R on/above it, and is
    // converted into the explicit V in place at the end.
    let mut work = a.clone();
    let mut t = Matrix::zeros(n, n);
    let mut taus = ws.take(n);
    let mut small = ws.take(nb); // per-panel w/z scratch

    let mut j0 = 0;
    while j0 < n {
        let bw = nb.min(n - j0);
        let j1 = j0 + bw;
        let mj = m - j0;

        // Single-panel factorization (n ≤ GEQRT_NB — every TSQR leaf and
        // upsweep merge): the row-major `work` *is* the contiguous
        // panel, so factor it in place with no staging copies at all.
        if j0 == 0 && bw == n {
            factor_panel(&mut work, &mut taus[..n], &mut small);
            larft_panel(&work, &taus[..n], &mut t, 0, &mut small);
            j0 = j1;
            continue;
        }

        // Factor the panel in contiguous scratch (allocation-free).
        let mut p = take_matrix(ws, mj, bw);
        for i in 0..mj {
            p.row_mut(i).copy_from_slice(&work.row(j0 + i)[j0..j1]);
        }
        factor_panel(&mut p, &mut taus[j0..j1], &mut small);
        larft_panel(&p, &taus[j0..j1], &mut t, j0, &mut small);

        // The explicit panel basis and contiguous T block feed the
        // larfb and T-growth gemms — a single-panel factorization
        // (n ≤ GEQRT_NB, e.g. every TSQR leaf and upsweep merge) needs
        // neither, so skip the copies entirely on that hot path.
        if j1 < n || j0 > 0 {
            // Explicit panel basis (unit diagonal, zeros above).
            let mut vp = take_matrix(ws, mj, bw);
            for i in 0..mj {
                let lim = i.min(bw);
                vp.row_mut(i)[..lim].copy_from_slice(&p.row(i)[..lim]);
                if i < bw {
                    vp[(i, i)] = 1.0;
                }
            }
            // The panel's T block, contiguous for the gemms.
            let mut tp = take_matrix(ws, bw, bw);
            for i in 0..bw {
                tp.row_mut(i).copy_from_slice(&t.row(j0 + i)[j0..j1]);
            }

            // Trailing update (larfb): C := C − V·Tᵀ·(Vᵀ·C), three gemms.
            if j1 < n {
                let nt = n - j1;
                let mut c = take_matrix(ws, mj, nt);
                for i in 0..mj {
                    c.row_mut(i).copy_from_slice(&work.row(j0 + i)[j1..n]);
                }
                let mut w = take_matrix(ws, bw, nt);
                gemm(Trans::Yes, Trans::No, 1.0, &vp, &c, 0.0, &mut w);
                let mut w2 = take_matrix(ws, bw, nt);
                gemm(Trans::Yes, Trans::No, 1.0, &tp, &w, 0.0, &mut w2);
                gemm(Trans::No, Trans::No, -1.0, &vp, &w2, 1.0, &mut c);
                for i in 0..mj {
                    work.row_mut(j0 + i)[j1..n].copy_from_slice(c.row(i));
                }
                put_matrix(ws, c);
                put_matrix(ws, w);
                put_matrix(ws, w2);
            }

            // Grow the global T: T[0..j0, j0..j1] = −T₁·(V₁ᵀ·V_p)·T_p,
            // where V₁ = the already-stored basis columns (rows j0..m of
            // `work`'s first j0 columns are pure V entries).
            if j0 > 0 {
                let mut v1 = take_matrix(ws, mj, j0);
                for i in 0..mj {
                    v1.row_mut(i).copy_from_slice(&work.row(j0 + i)[..j0]);
                }
                let mut z = take_matrix(ws, j0, bw);
                gemm(Trans::Yes, Trans::No, 1.0, &v1, &vp, 0.0, &mut z);
                let mut t1 = take_matrix(ws, j0, j0);
                for i in 0..j0 {
                    t1.row_mut(i).copy_from_slice(&t.row(i)[..j0]);
                }
                let mut t1z = take_matrix(ws, j0, bw);
                gemm(Trans::No, Trans::No, 1.0, &t1, &z, 0.0, &mut t1z);
                let mut t12 = take_matrix(ws, j0, bw);
                gemm(Trans::No, Trans::No, -1.0, &t1z, &tp, 0.0, &mut t12);
                for i in 0..j0 {
                    t.row_mut(i)[j0..j1].copy_from_slice(t12.row(i));
                }
                put_matrix(ws, v1);
                put_matrix(ws, z);
                put_matrix(ws, t1);
                put_matrix(ws, t1z);
                put_matrix(ws, t12);
            }
            put_matrix(ws, vp);
            put_matrix(ws, tp);
        }

        // Land the factored panel (V below, R above) back in `work`.
        for i in 0..mj {
            work.row_mut(j0 + i)[j0..j1].copy_from_slice(p.row(i));
        }
        put_matrix(ws, p);
        j0 = j1;
    }
    ws.put(taus);
    ws.put(small);

    // R = leading n × n upper triangle, then turn `work` into the
    // explicit unit-lower-trapezoidal V in place.
    let r = work.submatrix(0, n, 0, n).upper_triangular_part();
    for i in 0..n {
        let row = work.row_mut(i);
        for item in row.iter_mut().take(n).skip(i) {
            *item = 0.0;
        }
        row[i] = 1.0;
    }

    Reflector { v: work, t, r }
}

/// The seed's unblocked column-at-a-time Householder QR, kept (like
/// `gemm_reference`) as the correctness baseline and benchmark
/// reference for the blocked [`geqrt`].
///
/// # Panics
/// If `m < n`.
pub fn geqrt_reference(a: &Matrix) -> Reflector {
    let (m, n) = (a.rows(), a.cols());
    assert!(m >= n, "geqrt requires m ≥ n (got {m} × {n})");
    let mut work = a.clone();
    let mut v = Matrix::zeros(m, n);
    let mut taus = vec![0.0; n];

    for j in 0..n {
        // Householder vector for column j below the diagonal.
        let x: Vec<f64> = (j..m).map(|i| work[(i, j)]).collect();
        let (hv, tau, mu) = house(&x);
        taus[j] = tau;
        for (k, &hvk) in hv.iter().enumerate() {
            v[(j + k, j)] = hvk;
        }
        // Apply (I − tau·hv·hvᵀ) to the trailing columns j..n of rows j..m.
        if tau != 0.0 {
            for c in j..n {
                let mut w = 0.0;
                for (k, &hvk) in hv.iter().enumerate() {
                    w += hvk * work[(j + k, c)];
                }
                let tw = tau * w;
                for (k, &hvk) in hv.iter().enumerate() {
                    work[(j + k, c)] -= tw * hvk;
                }
            }
        }
        // The new diagonal entry is mu = ‖x‖ by construction; store exactly.
        work[(j, j)] = mu;
    }

    // R = leading n × n upper triangle of the reduced matrix.
    let r = work.submatrix(0, n, 0, n).upper_triangular_part();

    // T assembly (forward larft): T[j,j] = tau_j,
    // T[0..j, j] = −tau_j · T[0..j,0..j] · (V[:,0..j]ᵀ · v_j).
    let mut t = Matrix::zeros(n, n);
    for j in 0..n {
        let tau = taus[j];
        t[(j, j)] = tau;
        if j > 0 && tau != 0.0 {
            // z = V[:, 0..j]ᵀ · v_j  (only rows j..m of v_j are nonzero).
            let mut z = vec![0.0; j];
            for (c, zc) in z.iter_mut().enumerate() {
                let mut s = 0.0;
                for i in j..m {
                    s += v[(i, c)] * v[(i, j)];
                }
                *zc = s;
            }
            // T[0..j, j] = −tau · T[0..j,0..j] · z (T block is upper tri).
            for i in 0..j {
                let mut s = 0.0;
                for (k, &zk) in z.iter().enumerate().skip(i) {
                    s += t[(i, k)] * zk;
                }
                t[(i, j)] = -tau * s;
            }
        }
    }

    Reflector { v, t, r }
}

/// Apply a block reflector: `C := (I − V·T'·Vᵀ)·C`, where `T' = Tᵀ` if
/// `transpose` (i.e. apply `Qᵀ`) and `T' = T` otherwise (apply `Q`).
/// Scratch comes from the calling thread's arena; use
/// [`apply_block_reflector_ws`] to pass an explicit one.
///
/// `V` is `m × k`, `T` is `k × k`, `C` is `m × n`.
pub fn apply_block_reflector(v: &Matrix, t: &Matrix, c: &mut Matrix, transpose: bool) {
    with_thread_arena(|ws| apply_block_reflector_ws(ws, v, t, c, transpose));
}

/// [`apply_block_reflector`] writing its two `k × n` temporaries into
/// arena scratch: three blocked gemms, no allocation after warm-up.
pub fn apply_block_reflector_ws(
    ws: &mut dyn ScratchArena,
    v: &Matrix,
    t: &Matrix,
    c: &mut Matrix,
    transpose: bool,
) {
    let k = v.cols();
    assert_eq!(v.rows(), c.rows(), "apply_block_reflector: row mismatch");
    assert_eq!(t.rows(), k, "apply_block_reflector: T shape");
    assert_eq!(t.cols(), k, "apply_block_reflector: T shape");
    if k == 0 || c.cols() == 0 {
        return;
    }
    // W = Vᵀ C  (k × n)
    let mut w = take_matrix(ws, k, c.cols());
    gemm(Trans::Yes, Trans::No, 1.0, v, c, 0.0, &mut w);
    // W = T' W
    let mut w2 = take_matrix(ws, k, c.cols());
    let tt = if transpose { Trans::Yes } else { Trans::No };
    gemm(tt, Trans::No, 1.0, t, &w, 0.0, &mut w2);
    // C -= V W
    gemm(Trans::No, Trans::No, -1.0, v, &w2, 1.0, c);
    put_matrix(ws, w);
    put_matrix(ws, w2);
}

/// `Q · C` for `Q = I − V·T·Vᵀ` (a new matrix).
pub fn q_times(v: &Matrix, t: &Matrix, c: &Matrix) -> Matrix {
    let mut out = c.clone();
    apply_block_reflector(v, t, &mut out, false);
    out
}

/// `Qᵀ · C` for `Q = I − V·T·Vᵀ` (a new matrix).
pub fn qt_times(v: &Matrix, t: &Matrix, c: &Matrix) -> Matrix {
    let mut out = c.clone();
    apply_block_reflector(v, t, &mut out, true);
    out
}

/// `Q₁ · C` using only the **leading `k` reflectors** of the compact WY
/// pair: `Q₁ = H₀·H₁···H_{k−1} = I − V₁·T₁·V₁ᵀ` with `V₁ = V[:, :k]`
/// and `T₁ = T[:k, :k]` (the compact WY nesting property: `T`'s leading
/// principal block *is* the `T` of the first `k` reflectors, so no
/// recomputation is needed). The low-rank serving path: after a
/// rank-revealing factorization detected rank `k`, the trailing
/// `n − k` reflectors carry no information about `range(A)` — a
/// least-squares solve or basis extraction only needs `Q₁`, at
/// `O(mk)` work per column instead of `O(mn)`.
///
/// # Panics
/// If `k > V.cols()`.
pub fn q_times_trunc(v: &Matrix, t: &Matrix, c: &Matrix, k: usize) -> Matrix {
    let mut out = c.clone();
    apply_trunc(v, t, &mut out, k, false);
    out
}

/// `Q₁ᵀ · C` using only the leading `k` reflectors (see
/// [`q_times_trunc`]).
pub fn qt_times_trunc(v: &Matrix, t: &Matrix, c: &Matrix, k: usize) -> Matrix {
    let mut out = c.clone();
    apply_trunc(v, t, &mut out, k, true);
    out
}

fn apply_trunc(v: &Matrix, t: &Matrix, c: &mut Matrix, k: usize, transpose: bool) {
    let n = v.cols();
    assert!(
        k <= n,
        "truncated apply: k = {k} exceeds the {n} stored reflectors"
    );
    if k == n {
        // Full apply — don't copy the factors just to use all of them.
        apply_block_reflector(v, t, c, transpose);
        return;
    }
    let v1 = v.submatrix(0, v.rows(), 0, k);
    let t1 = t.submatrix(0, k, 0, k);
    apply_block_reflector(&v1, &t1, c, transpose);
}

/// The leading `n` columns of `Q` (the "thin" Q-factor), `m × n`.
pub fn thin_q(v: &Matrix, t: &Matrix) -> Matrix {
    with_thread_arena(|ws| thin_q_ws(ws, v, t))
}

/// [`thin_q`] with an explicit scratch arena for the reflector
/// application's temporaries.
pub fn thin_q_ws(ws: &mut dyn ScratchArena, v: &Matrix, t: &Matrix) -> Matrix {
    let (m, n) = (v.rows(), v.cols());
    let mut e = Matrix::zeros(m, n);
    for j in 0..n {
        e[(j, j)] = 1.0;
    }
    apply_block_reflector_ws(ws, v, t, &mut e, false);
    e
}

/// The full `m × m` Q-factor (for small-scale testing only).
pub fn full_q(v: &Matrix, t: &Matrix) -> Matrix {
    let m = v.rows();
    let mut q = Matrix::identity(m);
    apply_block_reflector(v, t, &mut q, false);
    q
}

/// A reproducible `m × n` test matrix (`m ≥ n ≥ 1`) with 2-norm condition
/// number `kappa`: `A = U·Σ·Vᵀ` with `U` (`m × n`) and `V` (`n × n`) the
/// orthonormal Q-factors of random matrices and singular values graded
/// geometrically from `1` down to `1/kappa`. The workhorse of the
/// CholeskyQR2-vs-TSQR accuracy experiments, where the breakdown point is
/// a function of κ(A) alone.
///
/// # Panics
/// If `m < n`, `n == 0`, or `kappa < 1`.
pub fn random_with_condition(m: usize, n: usize, kappa: f64, seed: u64) -> Matrix {
    assert!(m >= n && n >= 1, "need m ≥ n ≥ 1 (got {m} × {n})");
    assert!(kappa >= 1.0, "condition number must be ≥ 1");
    let u = thin_q_of_random(m, n, seed);
    let v = thin_q_of_random(n, n, seed.wrapping_add(0x9e37_79b9));
    // Scale U's columns by the singular values, then multiply by Vᵀ.
    let mut us = u;
    for j in 0..n {
        let sigma = if n == 1 {
            1.0
        } else {
            kappa.powf(-(j as f64) / (n as f64 - 1.0))
        };
        for i in 0..m {
            us[(i, j)] *= sigma;
        }
    }
    crate::gemm::matmul_nt(&us, &v)
}

/// Orthonormal basis of a random full-rank matrix (helper for
/// [`random_with_condition`]).
fn thin_q_of_random(m: usize, n: usize, seed: u64) -> Matrix {
    let f = geqrt(&Matrix::random(m, n, seed));
    thin_q(&f.v, &f.t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, matmul_tn};
    use crate::scratch::LocalArena;

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64, what: &str) {
        let err = a.sub(b).max_abs();
        assert!(err <= tol, "{what}: max abs err {err} > {tol}");
    }

    fn check_qr_with(a: &Matrix, tol: f64, factor: impl Fn(&Matrix) -> Reflector) {
        let n = a.cols();
        let f = factor(a);
        assert!(
            f.v.is_unit_lower_trapezoidal(tol),
            "V not unit lower trapezoidal"
        );
        assert!(f.r.is_upper_triangular(0.0), "R not upper triangular");
        for j in 0..n {
            assert!(f.r[(j, j)] >= 0.0, "R diagonal must be nonnegative");
        }
        assert!(f.t.is_upper_triangular(0.0), "T not upper triangular");
        // A = Q [R; 0]
        let mut rn = Matrix::zeros(a.rows(), n);
        rn.set_submatrix(0, 0, &f.r);
        let qr = q_times(&f.v, &f.t, &rn);
        assert_close(&qr, a, tol, "A = QR");
        // Thin Q has orthonormal columns.
        let q1 = thin_q(&f.v, &f.t);
        let gram = matmul_tn(&q1, &q1);
        assert_close(&gram, &Matrix::identity(n), tol, "QᵀQ = I");
    }

    fn check_qr(a: &Matrix, tol: f64) {
        check_qr_with(a, tol, geqrt);
        check_qr_with(a, tol, geqrt_reference);
    }

    #[test]
    fn house_reflects_to_norm_e1() {
        for seed in 0..5 {
            let x = Matrix::random(7, 1, seed).into_vec();
            let (v, tau, mu) = house(&x);
            assert_eq!(v[0], 1.0);
            let norm: f64 = x.iter().map(|a| a * a).sum::<f64>().sqrt();
            assert!((mu - norm).abs() < 1e-12 * norm.max(1.0));
            // Hx = mu e1
            let w: f64 = v.iter().zip(&x).map(|(a, b)| a * b).sum();
            let hx: Vec<f64> = x.iter().zip(&v).map(|(xi, vi)| xi - tau * w * vi).collect();
            assert!((hx[0] - mu).abs() < 1e-12);
            for h in &hx[1..] {
                assert!(h.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn house_zero_tail_positive_head_is_noop() {
        let (v, tau, mu) = house(&[3.0, 0.0, 0.0]);
        assert_eq!(tau, 0.0);
        assert_eq!(mu, 3.0);
        assert_eq!(v[0], 1.0);
    }

    #[test]
    fn house_zero_tail_negative_head_flips() {
        let (_, tau, mu) = house(&[-3.0, 0.0]);
        assert_eq!(tau, 2.0);
        assert_eq!(mu, 3.0);
    }

    #[test]
    fn house_all_zero() {
        let (_, tau, mu) = house(&[0.0, 0.0, 0.0]);
        assert_eq!(tau, 0.0);
        assert_eq!(mu, 0.0);
    }

    #[test]
    fn qr_tall_random() {
        check_qr(&Matrix::random(20, 5, 42), 1e-12);
    }

    #[test]
    fn qr_square_random() {
        check_qr(&Matrix::random(8, 8, 7), 1e-12);
    }

    #[test]
    fn qr_single_column() {
        check_qr(&Matrix::random(10, 1, 9), 1e-13);
    }

    #[test]
    fn qr_single_row_and_column() {
        check_qr(&Matrix::from_vec(1, 1, vec![-2.5]), 1e-15);
    }

    #[test]
    fn qr_zero_matrix() {
        check_qr(&Matrix::zeros(6, 3), 1e-15);
    }

    #[test]
    fn qr_already_triangular() {
        let r = Matrix::from_fn(5, 5, |i, j| if j >= i { (1 + i + j) as f64 } else { 0.0 });
        check_qr(&r, 1e-12);
    }

    #[test]
    fn qr_rank_deficient() {
        // Two identical columns: still a valid factorization.
        let col = Matrix::random(12, 1, 3);
        let a = col.hstack(&col);
        check_qr(&a, 1e-12);
    }

    #[test]
    fn qr_zero_cols() {
        for factor in [geqrt, geqrt_reference] {
            let f = factor(&Matrix::zeros(4, 0));
            assert_eq!(f.v.cols(), 0);
            assert_eq!(f.r.rows(), 0);
        }
    }

    #[test]
    fn qr_spans_multiple_panels() {
        // Wider than GEQRT_NB: the blocked path takes several panels
        // and the cross-panel T blocks must be assembled correctly.
        let n = GEQRT_NB + 7;
        check_qr_with(&Matrix::random(2 * n + 3, n, 21), 1e-10, geqrt);
        let n = 3 * GEQRT_NB;
        check_qr_with(&Matrix::random(n, n, 22), 1e-9, geqrt);
    }

    #[test]
    fn blocked_matches_reference_across_shapes() {
        // The satellite sweep: single column, m = n, rank-deficient,
        // zero matrix, m ≫ n — blocked and reference must agree on R
        // and both must satisfy QR = A and orthogonality.
        let shapes: Vec<(String, Matrix)> = vec![
            ("single column".into(), Matrix::random(40, 1, 1)),
            ("m = n".into(), Matrix::random(48, 48, 2)),
            ("m = n small".into(), Matrix::random(5, 5, 3)),
            ("rank-deficient".into(), {
                let c = Matrix::random(70, 2, 4);
                c.hstack(&c).hstack(&c.hstack(&c))
            }),
            ("zero matrix".into(), Matrix::zeros(50, 40)),
            ("m >> n".into(), Matrix::random(400, 37, 5)),
            ("panel boundary".into(), Matrix::random(100, GEQRT_NB, 6)),
            (
                "one past boundary".into(),
                Matrix::random(100, GEQRT_NB + 1, 7),
            ),
        ];
        for (what, a) in &shapes {
            let n = a.cols();
            let fb = geqrt(a);
            let fr = geqrt_reference(a);
            let tol = 1e-10 * (1.0 + a.frobenius_norm());
            assert_close(
                &fb.r,
                &fr.r,
                tol,
                &format!("{what}: R blocked vs reference"),
            );
            let mut rn = Matrix::zeros(a.rows(), n);
            rn.set_submatrix(0, 0, &fb.r);
            assert_close(
                &q_times(&fb.v, &fb.t, &rn),
                a,
                tol,
                &format!("{what}: QR = A"),
            );
            // Householder Q is orthogonal regardless of A's rank.
            let q1 = thin_q(&fb.v, &fb.t);
            let gram = matmul_tn(&q1, &q1);
            assert_close(
                &gram,
                &Matrix::identity(n),
                1e-10,
                &format!("{what}: QᵀQ = I"),
            );
        }
    }

    #[test]
    fn geqrt_ws_reuses_its_arena() {
        // A warm arena serves every panel-loop request from the pool:
        // repeat factorizations of the same shape stop allocating.
        let mut ws = LocalArena::new();
        let a = Matrix::random(3 * GEQRT_NB, 2 * GEQRT_NB, 11);
        let _ = geqrt_ws(&mut ws, &a);
        let _ = geqrt_ws(&mut ws, &a);
        let (_, misses_warm) = ws.stats();
        let _ = geqrt_ws(&mut ws, &a);
        let (_, misses_after) = ws.stats();
        assert_eq!(
            misses_warm, misses_after,
            "a warm geqrt_ws must allocate nothing"
        );
    }

    #[test]
    #[should_panic(expected = "m ≥ n")]
    fn qr_wide_rejected() {
        let _ = geqrt(&Matrix::zeros(2, 5));
    }

    #[test]
    #[should_panic(expected = "m ≥ n")]
    fn qr_wide_rejected_reference() {
        let _ = geqrt_reference(&Matrix::zeros(2, 5));
    }

    #[test]
    fn t_matches_product_of_reflectors() {
        // Q from (V,T) must equal H₀H₁…H_{n−1} applied to the identity.
        let a = Matrix::random(9, 4, 11);
        let f = geqrt(&a);
        let m = a.rows();
        // Build Q directly from individual reflectors: H_j = I − tau_j v_j v_jᵀ.
        let mut q = Matrix::identity(m);
        for j in (0..a.cols()).rev() {
            let tau = f.t[(j, j)];
            let vj = f.v.submatrix(0, m, j, j + 1);
            // q := (I − tau v vᵀ) q
            let w = matmul_tn(&vj, &q);
            let mut vw = matmul(&vj, &w);
            vw.scale(tau);
            q.sub_assign(&vw);
        }
        let q_wy = full_q(&f.v, &f.t);
        assert_close(&q, &q_wy, 1e-12, "compact WY equals reflector product");
    }

    #[test]
    fn apply_q_then_qt_roundtrips() {
        let a = Matrix::random(10, 3, 13);
        let f = geqrt(&a);
        let c = Matrix::random(10, 6, 14);
        let qc = q_times(&f.v, &f.t, &c);
        let back = qt_times(&f.v, &f.t, &qc);
        assert_close(&back, &c, 1e-12, "QᵀQC = C");
    }

    #[test]
    fn qt_a_gives_r() {
        let a = Matrix::random(12, 4, 15);
        let f = geqrt(&a);
        let qta = qt_times(&f.v, &f.t, &a);
        let top = qta.submatrix(0, 4, 0, 4);
        assert_close(&top, &f.r, 1e-12, "QᵀA = [R; 0] (top)");
        let bottom = qta.submatrix(4, 12, 0, 4);
        assert!(bottom.max_abs() < 1e-12, "QᵀA = [R; 0] (bottom)");
    }

    #[test]
    fn full_q_is_orthogonal() {
        let a = Matrix::random(7, 3, 16);
        let f = geqrt(&a);
        let q = full_q(&f.v, &f.t);
        let gram = matmul_tn(&q, &q);
        assert_close(&gram, &Matrix::identity(7), 1e-12, "full Q orthogonal");
    }

    #[test]
    fn empty_reflector_is_identity() {
        let v = Matrix::zeros(5, 0);
        let t = Matrix::zeros(0, 0);
        let c0 = Matrix::random(5, 2, 17);
        let mut c = c0.clone();
        apply_block_reflector(&v, &t, &mut c, false);
        assert_eq!(c, c0);
    }

    #[test]
    fn apply_ws_matches_wrapper() {
        let a = Matrix::random(30, 6, 23);
        let f = geqrt(&a);
        let c0 = Matrix::random(30, 4, 24);
        let mut c1 = c0.clone();
        apply_block_reflector(&f.v, &f.t, &mut c1, true);
        let mut ws = LocalArena::new();
        let mut c2 = c0.clone();
        apply_block_reflector_ws(&mut ws, &f.v, &f.t, &mut c2, true);
        assert_eq!(c1, c2, "same arithmetic regardless of the arena");
        assert_eq!(thin_q(&f.v, &f.t), thin_q_ws(&mut ws, &f.v, &f.t));
    }

    #[test]
    fn random_with_condition_kappa_one_is_orthonormal() {
        let a = random_with_condition(20, 5, 1.0, 18);
        let gram = matmul_tn(&a, &a);
        assert_close(&gram, &Matrix::identity(5), 1e-12, "κ=1 ⇒ AᵀA = I");
    }

    #[test]
    fn random_with_condition_singular_values_are_graded() {
        // trace(AᵀA) = Σ σ_j² with σ_j = κ^{−j/(n−1)} — checks the whole
        // singular spectrum's sum of squares, not just the norm.
        let (m, n, kappa) = (48usize, 6usize, 1e4f64);
        let a = random_with_condition(m, n, kappa, 19);
        let g = matmul_tn(&a, &a);
        let trace: f64 = (0..n).map(|i| g[(i, i)]).sum();
        let expect: f64 = (0..n)
            .map(|j| kappa.powf(-2.0 * j as f64 / (n as f64 - 1.0)))
            .sum();
        assert!(
            (trace - expect).abs() < 1e-10 * expect,
            "trace {trace} vs {expect}"
        );
    }

    #[test]
    fn random_with_condition_reproducible_and_seed_sensitive() {
        let a = random_with_condition(16, 4, 100.0, 7);
        let b = random_with_condition(16, 4, 100.0, 7);
        assert_eq!(a, b);
        let c = random_with_condition(16, 4, 100.0, 8);
        assert!(a.sub(&c).max_abs() > 1e-3);
    }

    #[test]
    fn random_with_condition_single_column() {
        let a = random_with_condition(8, 1, 1e6, 20);
        let norm = a.frobenius_norm();
        assert!((norm - 1.0).abs() < 1e-12, "single column has σ = 1");
    }

    /// An `m × n` matrix of rank exactly `k` whose trailing `n − k`
    /// columns are *exactly* zero — after `k` Householder steps the
    /// remaining columns stay exactly zero (reflectors are linear), so
    /// every trailing `τ` is exactly `0` and `T`'s trailing rows/columns
    /// are exact zeros.
    fn rank_k_padded(m: usize, n: usize, k: usize, seed: u64) -> Matrix {
        let mut a = Matrix::zeros(m, n);
        a.set_submatrix(0, 0, &Matrix::random(m, k, seed));
        a
    }

    #[test]
    fn truncated_apply_is_bitwise_full_apply_on_exact_rank_k() {
        // On an input of exact rank k (trailing columns exactly zero),
        // the trailing reflectors are exact identities (τ = 0) and T's
        // trailing block is exactly zero — so applying only the leading
        // k reflectors IS the full apply, bit for bit.
        let (m, n, k) = (48usize, 10usize, 4usize);
        let a = rank_k_padded(m, n, k, 31);
        let f = geqrt(&a);
        for j in k..n {
            assert_eq!(f.t[(j, j)], 0.0, "trailing τ_{j} must be exactly 0");
        }
        let c = Matrix::random(m, 3, 32);
        assert_eq!(qt_times_trunc(&f.v, &f.t, &c, k), qt_times(&f.v, &f.t, &c));
        assert_eq!(q_times_trunc(&f.v, &f.t, &c, k), q_times(&f.v, &f.t, &c));
    }

    #[test]
    fn truncated_apply_matches_prefix_factorization() {
        // Generic full-rank input: Q₁ from the leading k reflectors of
        // the n-column factorization must equal the Q of factoring just
        // the first k columns — the compact WY nesting property.
        let (m, n, k) = (40usize, 12usize, 5usize);
        let a = Matrix::random(m, n, 33);
        let f_full = geqrt(&a);
        let f_head = geqrt(&a.submatrix(0, m, 0, k));
        let c = Matrix::random(m, 2, 34);
        let got = qt_times_trunc(&f_full.v, &f_full.t, &c, k);
        let expect = qt_times(&f_head.v, &f_head.t, &c);
        assert!(
            got.sub(&expect).max_abs() < 1e-12,
            "leading-k reflectors of the full factorization ≡ factoring k columns"
        );
        // k = n degenerates to the full apply, bitwise.
        assert_eq!(
            qt_times_trunc(&f_full.v, &f_full.t, &c, n),
            qt_times(&f_full.v, &f_full.t, &c)
        );
        // k = 0 is the identity.
        assert_eq!(q_times_trunc(&f_full.v, &f_full.t, &c, 0), c);
    }
}
