//! Householder QR with compact representations (paper Section 2.3).
//!
//! The factorization routine [`geqrt`] returns the *Householder
//! representation* the paper standardizes on: `Q = I − V·T·Vᵀ` with `V`
//! unit lower trapezoidal (`m × n`) and `T` upper triangular (`n × n`)
//! — the compact WY form \[SVL89\] with the (Sca)LAPACK convention \[Pug92\].
//! `R` is returned as the `n × n` upper triangle (the paper's convention
//! (2) of Section 2.3), with nonnegative diagonal.

use crate::dense::Matrix;
use crate::gemm::{gemm, Trans};

/// A QR factorization in Householder (compact WY) representation:
/// `A = (I − V·T·Vᵀ)·[R; 0]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Reflector {
    /// The `m × n` unit-lower-trapezoidal Householder basis.
    pub v: Matrix,
    /// The `n × n` upper-triangular kernel.
    pub t: Matrix,
    /// The `n × n` upper-triangular R-factor.
    pub r: Matrix,
}

/// Compute a Householder vector: given `x`, returns `(v, tau, mu)` with
/// `v[0] = 1` such that `(I − tau·v·vᵀ)·x = mu·e₁` and `mu = ‖x‖ ≥ 0`
/// (Golub & Van Loan, Algorithm 5.1.1).
fn house(x: &[f64]) -> (Vec<f64>, f64, f64) {
    let n = x.len();
    assert!(n >= 1, "house: empty vector");
    let sigma: f64 = x[1..].iter().map(|&a| a * a).sum();
    let mut v = x.to_vec();
    v[0] = 1.0;
    if sigma == 0.0 {
        if x[0] >= 0.0 {
            (v, 0.0, x[0])
        } else {
            // x = x₀e₁ with x₀ < 0: reflect through e₁ to flip the sign.
            (v, 2.0, -x[0])
        }
    } else {
        let mu = (x[0] * x[0] + sigma).sqrt();
        let v0 = if x[0] <= 0.0 {
            x[0] - mu
        } else {
            -sigma / (x[0] + mu)
        };
        let tau = 2.0 * v0 * v0 / (sigma + v0 * v0);
        for item in v.iter_mut().skip(1) {
            *item /= v0;
        }
        (v, tau, mu)
    }
}

/// Householder QR of an `m × n` matrix with `m ≥ n`: the paper's
/// `local-QR` / LAPACK's `geqrt`. Returns the compact representation
/// `(V, T, R)`.
///
/// # Panics
/// If `m < n`.
pub fn geqrt(a: &Matrix) -> Reflector {
    let (m, n) = (a.rows(), a.cols());
    assert!(m >= n, "geqrt requires m ≥ n (got {m} × {n})");
    let mut work = a.clone();
    let mut v = Matrix::zeros(m, n);
    let mut taus = vec![0.0; n];

    for j in 0..n {
        // Householder vector for column j below the diagonal.
        let x: Vec<f64> = (j..m).map(|i| work[(i, j)]).collect();
        let (hv, tau, mu) = house(&x);
        taus[j] = tau;
        for (k, &hvk) in hv.iter().enumerate() {
            v[(j + k, j)] = hvk;
        }
        // Apply (I − tau·hv·hvᵀ) to the trailing columns j..n of rows j..m.
        if tau != 0.0 {
            for c in j..n {
                let mut w = 0.0;
                for (k, &hvk) in hv.iter().enumerate() {
                    w += hvk * work[(j + k, c)];
                }
                let tw = tau * w;
                for (k, &hvk) in hv.iter().enumerate() {
                    work[(j + k, c)] -= tw * hvk;
                }
            }
        }
        // The new diagonal entry is mu = ‖x‖ by construction; store exactly.
        work[(j, j)] = mu;
    }

    // R = leading n × n upper triangle of the reduced matrix.
    let r = work.submatrix(0, n, 0, n).upper_triangular_part();

    // T assembly (forward larft): T[j,j] = tau_j,
    // T[0..j, j] = −tau_j · T[0..j,0..j] · (V[:,0..j]ᵀ · v_j).
    let mut t = Matrix::zeros(n, n);
    for j in 0..n {
        let tau = taus[j];
        t[(j, j)] = tau;
        if j > 0 && tau != 0.0 {
            // z = V[:, 0..j]ᵀ · v_j  (only rows j..m of v_j are nonzero).
            let mut z = vec![0.0; j];
            for (c, zc) in z.iter_mut().enumerate() {
                let mut s = 0.0;
                for i in j..m {
                    s += v[(i, c)] * v[(i, j)];
                }
                *zc = s;
            }
            // T[0..j, j] = −tau · T[0..j,0..j] · z (T block is upper tri).
            for i in 0..j {
                let mut s = 0.0;
                for (k, &zk) in z.iter().enumerate().skip(i) {
                    s += t[(i, k)] * zk;
                }
                t[(i, j)] = -tau * s;
            }
        }
    }

    Reflector { v, t, r }
}

/// Apply a block reflector: `C := (I − V·T'·Vᵀ)·C`, where `T' = Tᵀ` if
/// `transpose` (i.e. apply `Qᵀ`) and `T' = T` otherwise (apply `Q`).
///
/// `V` is `m × k`, `T` is `k × k`, `C` is `m × n`.
pub fn apply_block_reflector(v: &Matrix, t: &Matrix, c: &mut Matrix, transpose: bool) {
    let k = v.cols();
    assert_eq!(v.rows(), c.rows(), "apply_block_reflector: row mismatch");
    assert_eq!(t.rows(), k, "apply_block_reflector: T shape");
    assert_eq!(t.cols(), k, "apply_block_reflector: T shape");
    if k == 0 || c.cols() == 0 {
        return;
    }
    // W = Vᵀ C  (k × n)
    let mut w = Matrix::zeros(k, c.cols());
    gemm(Trans::Yes, Trans::No, 1.0, v, c, 0.0, &mut w);
    // W = T' W
    let mut w2 = Matrix::zeros(k, c.cols());
    let tt = if transpose { Trans::Yes } else { Trans::No };
    gemm(tt, Trans::No, 1.0, t, &w, 0.0, &mut w2);
    // C -= V W
    gemm(Trans::No, Trans::No, -1.0, v, &w2, 1.0, c);
}

/// `Q · C` for `Q = I − V·T·Vᵀ` (a new matrix).
pub fn q_times(v: &Matrix, t: &Matrix, c: &Matrix) -> Matrix {
    let mut out = c.clone();
    apply_block_reflector(v, t, &mut out, false);
    out
}

/// `Qᵀ · C` for `Q = I − V·T·Vᵀ` (a new matrix).
pub fn qt_times(v: &Matrix, t: &Matrix, c: &Matrix) -> Matrix {
    let mut out = c.clone();
    apply_block_reflector(v, t, &mut out, true);
    out
}

/// The leading `n` columns of `Q` (the "thin" Q-factor), `m × n`.
pub fn thin_q(v: &Matrix, t: &Matrix) -> Matrix {
    let (m, n) = (v.rows(), v.cols());
    let mut e = Matrix::zeros(m, n);
    for j in 0..n {
        e[(j, j)] = 1.0;
    }
    apply_block_reflector(v, t, &mut e, false);
    e
}

/// The full `m × m` Q-factor (for small-scale testing only).
pub fn full_q(v: &Matrix, t: &Matrix) -> Matrix {
    let m = v.rows();
    let mut q = Matrix::identity(m);
    apply_block_reflector(v, t, &mut q, false);
    q
}

/// A reproducible `m × n` test matrix (`m ≥ n ≥ 1`) with 2-norm condition
/// number `kappa`: `A = U·Σ·Vᵀ` with `U` (`m × n`) and `V` (`n × n`) the
/// orthonormal Q-factors of random matrices and singular values graded
/// geometrically from `1` down to `1/kappa`. The workhorse of the
/// CholeskyQR2-vs-TSQR accuracy experiments, where the breakdown point is
/// a function of κ(A) alone.
///
/// # Panics
/// If `m < n`, `n == 0`, or `kappa < 1`.
pub fn random_with_condition(m: usize, n: usize, kappa: f64, seed: u64) -> Matrix {
    assert!(m >= n && n >= 1, "need m ≥ n ≥ 1 (got {m} × {n})");
    assert!(kappa >= 1.0, "condition number must be ≥ 1");
    let u = thin_q_of_random(m, n, seed);
    let v = thin_q_of_random(n, n, seed.wrapping_add(0x9e37_79b9));
    // Scale U's columns by the singular values, then multiply by Vᵀ.
    let mut us = u;
    for j in 0..n {
        let sigma = if n == 1 {
            1.0
        } else {
            kappa.powf(-(j as f64) / (n as f64 - 1.0))
        };
        for i in 0..m {
            us[(i, j)] *= sigma;
        }
    }
    crate::gemm::matmul_nt(&us, &v)
}

/// Orthonormal basis of a random full-rank matrix (helper for
/// [`random_with_condition`]).
fn thin_q_of_random(m: usize, n: usize, seed: u64) -> Matrix {
    let f = geqrt(&Matrix::random(m, n, seed));
    thin_q(&f.v, &f.t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, matmul_tn};

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64, what: &str) {
        let err = a.sub(b).max_abs();
        assert!(err <= tol, "{what}: max abs err {err} > {tol}");
    }

    fn check_qr(a: &Matrix, tol: f64) {
        let n = a.cols();
        let f = geqrt(a);
        assert!(
            f.v.is_unit_lower_trapezoidal(tol),
            "V not unit lower trapezoidal"
        );
        assert!(f.r.is_upper_triangular(0.0), "R not upper triangular");
        for j in 0..n {
            assert!(f.r[(j, j)] >= 0.0, "R diagonal must be nonnegative");
        }
        assert!(f.t.is_upper_triangular(0.0), "T not upper triangular");
        // A = Q [R; 0]
        let mut rn = Matrix::zeros(a.rows(), n);
        rn.set_submatrix(0, 0, &f.r);
        let qr = q_times(&f.v, &f.t, &rn);
        assert_close(&qr, a, tol, "A = QR");
        // Thin Q has orthonormal columns.
        let q1 = thin_q(&f.v, &f.t);
        let gram = matmul_tn(&q1, &q1);
        assert_close(&gram, &Matrix::identity(n), tol, "QᵀQ = I");
    }

    #[test]
    fn house_reflects_to_norm_e1() {
        for seed in 0..5 {
            let x = Matrix::random(7, 1, seed).into_vec();
            let (v, tau, mu) = house(&x);
            assert_eq!(v[0], 1.0);
            let norm: f64 = x.iter().map(|a| a * a).sum::<f64>().sqrt();
            assert!((mu - norm).abs() < 1e-12 * norm.max(1.0));
            // Hx = mu e1
            let w: f64 = v.iter().zip(&x).map(|(a, b)| a * b).sum();
            let hx: Vec<f64> = x.iter().zip(&v).map(|(xi, vi)| xi - tau * w * vi).collect();
            assert!((hx[0] - mu).abs() < 1e-12);
            for h in &hx[1..] {
                assert!(h.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn house_zero_tail_positive_head_is_noop() {
        let (v, tau, mu) = house(&[3.0, 0.0, 0.0]);
        assert_eq!(tau, 0.0);
        assert_eq!(mu, 3.0);
        assert_eq!(v[0], 1.0);
    }

    #[test]
    fn house_zero_tail_negative_head_flips() {
        let (_, tau, mu) = house(&[-3.0, 0.0]);
        assert_eq!(tau, 2.0);
        assert_eq!(mu, 3.0);
    }

    #[test]
    fn house_all_zero() {
        let (_, tau, mu) = house(&[0.0, 0.0, 0.0]);
        assert_eq!(tau, 0.0);
        assert_eq!(mu, 0.0);
    }

    #[test]
    fn qr_tall_random() {
        check_qr(&Matrix::random(20, 5, 42), 1e-12);
    }

    #[test]
    fn qr_square_random() {
        check_qr(&Matrix::random(8, 8, 7), 1e-12);
    }

    #[test]
    fn qr_single_column() {
        check_qr(&Matrix::random(10, 1, 9), 1e-13);
    }

    #[test]
    fn qr_single_row_and_column() {
        check_qr(&Matrix::from_vec(1, 1, vec![-2.5]), 1e-15);
    }

    #[test]
    fn qr_zero_matrix() {
        check_qr(&Matrix::zeros(6, 3), 1e-15);
    }

    #[test]
    fn qr_already_triangular() {
        let r = Matrix::from_fn(5, 5, |i, j| if j >= i { (1 + i + j) as f64 } else { 0.0 });
        check_qr(&r, 1e-12);
    }

    #[test]
    fn qr_rank_deficient() {
        // Two identical columns: still a valid factorization.
        let col = Matrix::random(12, 1, 3);
        let a = col.hstack(&col);
        check_qr(&a, 1e-12);
    }

    #[test]
    fn qr_zero_cols() {
        let f = geqrt(&Matrix::zeros(4, 0));
        assert_eq!(f.v.cols(), 0);
        assert_eq!(f.r.rows(), 0);
    }

    #[test]
    #[should_panic(expected = "m ≥ n")]
    fn qr_wide_rejected() {
        let _ = geqrt(&Matrix::zeros(2, 5));
    }

    #[test]
    fn t_matches_product_of_reflectors() {
        // Q from (V,T) must equal H₀H₁…H_{n−1} applied to the identity.
        let a = Matrix::random(9, 4, 11);
        let f = geqrt(&a);
        let m = a.rows();
        // Build Q directly from individual reflectors: H_j = I − tau_j v_j v_jᵀ.
        let mut q = Matrix::identity(m);
        for j in (0..a.cols()).rev() {
            let tau = f.t[(j, j)];
            let vj = f.v.submatrix(0, m, j, j + 1);
            // q := (I − tau v vᵀ) q
            let w = matmul_tn(&vj, &q);
            let mut vw = matmul(&vj, &w);
            vw.scale(tau);
            q.sub_assign(&vw);
        }
        let q_wy = full_q(&f.v, &f.t);
        assert_close(&q, &q_wy, 1e-12, "compact WY equals reflector product");
    }

    #[test]
    fn apply_q_then_qt_roundtrips() {
        let a = Matrix::random(10, 3, 13);
        let f = geqrt(&a);
        let c = Matrix::random(10, 6, 14);
        let qc = q_times(&f.v, &f.t, &c);
        let back = qt_times(&f.v, &f.t, &qc);
        assert_close(&back, &c, 1e-12, "QᵀQC = C");
    }

    #[test]
    fn qt_a_gives_r() {
        let a = Matrix::random(12, 4, 15);
        let f = geqrt(&a);
        let qta = qt_times(&f.v, &f.t, &a);
        let top = qta.submatrix(0, 4, 0, 4);
        assert_close(&top, &f.r, 1e-12, "QᵀA = [R; 0] (top)");
        let bottom = qta.submatrix(4, 12, 0, 4);
        assert!(bottom.max_abs() < 1e-12, "QᵀA = [R; 0] (bottom)");
    }

    #[test]
    fn full_q_is_orthogonal() {
        let a = Matrix::random(7, 3, 16);
        let f = geqrt(&a);
        let q = full_q(&f.v, &f.t);
        let gram = matmul_tn(&q, &q);
        assert_close(&gram, &Matrix::identity(7), 1e-12, "full Q orthogonal");
    }

    #[test]
    fn empty_reflector_is_identity() {
        let v = Matrix::zeros(5, 0);
        let t = Matrix::zeros(0, 0);
        let c0 = Matrix::random(5, 2, 17);
        let mut c = c0.clone();
        apply_block_reflector(&v, &t, &mut c, false);
        assert_eq!(c, c0);
    }

    #[test]
    fn random_with_condition_kappa_one_is_orthonormal() {
        let a = random_with_condition(20, 5, 1.0, 18);
        let gram = matmul_tn(&a, &a);
        assert_close(&gram, &Matrix::identity(5), 1e-12, "κ=1 ⇒ AᵀA = I");
    }

    #[test]
    fn random_with_condition_singular_values_are_graded() {
        // trace(AᵀA) = Σ σ_j² with σ_j = κ^{−j/(n−1)} — checks the whole
        // singular spectrum's sum of squares, not just the norm.
        let (m, n, kappa) = (48usize, 6usize, 1e4f64);
        let a = random_with_condition(m, n, kappa, 19);
        let g = matmul_tn(&a, &a);
        let trace: f64 = (0..n).map(|i| g[(i, i)]).sum();
        let expect: f64 = (0..n)
            .map(|j| kappa.powf(-2.0 * j as f64 / (n as f64 - 1.0)))
            .sum();
        assert!(
            (trace - expect).abs() < 1e-10 * expect,
            "trace {trace} vs {expect}"
        );
    }

    #[test]
    fn random_with_condition_reproducible_and_seed_sensitive() {
        let a = random_with_condition(16, 4, 100.0, 7);
        let b = random_with_condition(16, 4, 100.0, 7);
        assert_eq!(a, b);
        let c = random_with_condition(16, 4, 100.0, 8);
        assert!(a.sub(&c).max_abs() > 1e-3);
    }

    #[test]
    fn random_with_condition_single_column() {
        let a = random_with_condition(8, 1, 1e6, 20);
        let norm = a.frobenius_norm();
        assert!((norm - 1.0).abs() < 1e-12, "single column has σ = 1");
    }
}
