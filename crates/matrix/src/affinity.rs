//! Opt-in CPU affinity for the crate's long-lived compute threads.
//!
//! The within-rank worker pool ([`crate::par`]) and the machine
//! executor's rank threads are long-lived and cache-hot: on a dedicated
//! host, pinning each one to a fixed core stops the scheduler from
//! migrating them mid-`gemm` and keeps packed macro-tiles in the right
//! L2. On a shared or oversubscribed host pinning *hurts* (threads
//! can no longer get out of each other's way), so it is **off by
//! default** and enabled only via `QR3D_PIN_CORES=1`.
//!
//! There is no `libc`/`core_affinity` dependency in this workspace, so
//! the Linux implementation issues the `sched_setaffinity` syscall
//! directly (x86_64/aarch64); everywhere else — and whenever the
//! syscall fails, e.g. inside a restricted sandbox — pinning degrades
//! to a silent no-op, mirroring the crossbeam benches' "pin if you
//! can" idiom. Nothing in the crate ever *depends* on pinning having
//! happened; results are identical either way.
//!
//! Callers hand in a stable *slot* (helper index, rank id); the slot is
//! mapped onto the detected cores round-robin (`slot % cores`), so any
//! number of threads lands on a valid mask.

use std::sync::OnceLock;

/// Whether `QR3D_PIN_CORES` asked for pinning (read once per process,
/// like [`crate::block::BlockParams`]; accepted truthy spellings:
/// `1`, `true`, `on`, `yes`, case-insensitive).
pub fn pinning_requested() -> bool {
    static REQUESTED: OnceLock<bool> = OnceLock::new();
    *REQUESTED.get_or_init(|| {
        std::env::var("QR3D_PIN_CORES")
            .map(|v| parse_truthy(&v))
            .unwrap_or(false)
    })
}

/// The env-value parser, exposed for tests (the flag itself is frozen
/// once read).
pub(crate) fn parse_truthy(v: &str) -> bool {
    matches!(
        v.trim().to_ascii_lowercase().as_str(),
        "1" | "true" | "on" | "yes"
    )
}

/// Pin the calling thread to core `slot % available cores` **if**
/// `QR3D_PIN_CORES` is set; otherwise (or when the host refuses) do
/// nothing. Returns whether the thread is now pinned — callers must not
/// rely on `true` for correctness, only for diagnostics.
pub fn maybe_pin(slot: usize) -> bool {
    if !pinning_requested() {
        return false;
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    pin_current_to(slot % cores)
}

/// Unconditionally try to pin the calling thread to `core`. Best
/// effort: `false` means the platform has no implementation or the
/// kernel rejected the mask (core offline, cpuset restriction, …).
pub fn pin_current_to(core: usize) -> bool {
    imp::pin_current_to(core)
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    /// `cpu_set_t` is 1024 bits on Linux; one `u64` word per 64 cores.
    const MASK_WORDS: usize = 1024 / 64;

    pub(super) fn pin_current_to(core: usize) -> bool {
        if core >= 1024 {
            return false;
        }
        let mut mask = [0u64; MASK_WORDS];
        mask[core / 64] = 1u64 << (core % 64);
        // sched_setaffinity(pid = 0 ⇒ calling thread, len, mask).
        let ret = unsafe {
            syscall3(
                SYS_SCHED_SETAFFINITY,
                0,
                core::mem::size_of_val(&mask),
                mask.as_ptr() as usize,
            )
        };
        ret == 0
    }

    #[cfg(target_arch = "x86_64")]
    const SYS_SCHED_SETAFFINITY: usize = 203;
    #[cfg(target_arch = "aarch64")]
    const SYS_SCHED_SETAFFINITY: usize = 122;

    /// Three-argument raw syscall. SAFETY: `sched_setaffinity` only
    /// *reads* `arg3..arg3+arg2` (a live, properly sized mask above)
    /// and has no other memory effects; an error returns a negative
    /// errno without side effects.
    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall3(nr: usize, arg1: usize, arg2: usize, arg3: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") arg1,
            in("rsi") arg2,
            in("rdx") arg3,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack, preserves_flags)
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall3(nr: usize, arg1: usize, arg2: usize, arg3: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") nr,
            inlateout("x0") arg1 as isize => ret,
            in("x1") arg2,
            in("x2") arg3,
            options(nostack)
        );
        ret
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    pub(super) fn pin_current_to(_core: usize) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthy_spellings() {
        for v in ["1", "true", "ON", " yes "] {
            assert!(parse_truthy(v), "{v:?} should enable pinning");
        }
        for v in ["0", "false", "off", "", "2", "no"] {
            assert!(!parse_truthy(v), "{v:?} should not enable pinning");
        }
    }

    #[test]
    fn maybe_pin_is_noop_unless_requested() {
        // The test environment does not set QR3D_PIN_CORES, so this must
        // be a no-op returning false — the default-off contract.
        if std::env::var("QR3D_PIN_CORES").is_err() {
            assert!(!maybe_pin(0));
        }
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    #[test]
    fn direct_pin_succeeds_or_fails_cleanly() {
        // Pin a scratch thread (not the test runner) to core 0. Either
        // outcome is acceptable — sandboxes may refuse — but the call
        // must not crash, and an absurd core index must be rejected.
        let ok = std::thread::spawn(|| pin_current_to(0)).join().unwrap();
        let _ = ok;
        assert!(!pin_current_to(1 << 20), "out-of-range core is refused");
    }
}
