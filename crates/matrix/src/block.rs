//! Runtime blocking parameters for the local kernels.
//!
//! The blocked kernels were tuned with fixed tile widths
//! ([`crate::qr::GEQRT_NB`], [`crate::tri::TRI_NB`], [`PIVOT_NB`]); this
//! module lifts them into a [`BlockParams`] value resolved **once** per
//! process, so deployments can override them through the environment —
//! the first step toward the roadmap's autotuned-blocking item:
//!
//! | variable           | kernel                      | default |
//! |--------------------|-----------------------------|---------|
//! | `QR3D_GEQRT_NB`    | [`crate::qr::geqrt`] panels | 32      |
//! | `QR3D_TRI_NB`      | [`crate::tri::trsm`]/`potrf` tiles | 32 |
//! | `QR3D_PIVOT_NB`    | [`crate::pivot::geqp3`] panels | 32   |
//! | `QR3D_GEMM_MC`     | [`crate::gemm::gemm`] row macro-tile | 128 |
//! | `QR3D_GEMM_KC`     | [`crate::gemm::gemm`] depth macro-tile | 256 |
//! | `QR3D_GEMM_NC`     | [`crate::gemm::gemm`] column macro-tile | 2048 |
//! | `QR3D_SIMD`        | [`crate::simd`] dispatch (`auto`/`avx512`/`avx2`/`scalar`) | `auto` |
//! | `QR3D_RANK_THREADS`| [`crate::par`] within-rank workers | 1 |
//!
//! Integer values are parsed as positive integers and clamped
//! (blocking widths to [`BlockParams::MAX_NB`], gemm macro-tiles to
//! [`BlockParams::MAX_GEMM_TILE`], worker counts to
//! [`crate::par::MAX_FANOUT`]); anything unparsable falls back to the
//! default (a misspelled override must not silently change numerics in
//! some *other* direction — which also holds for `QR3D_SIMD`, whose
//! levels are all bitwise-identical by construction, and for
//! `QR3D_GEMM_KC`, whose value all thread counts share). The resolution
//! happens lazily on first kernel use and is then frozen for the
//! process lifetime — blocking widths changing mid-run would make
//! repeat factorizations of the same input non-reproducible.

use std::sync::OnceLock;

use crate::simd::SimdLevel;

/// Default panel width of the blocked pivoted QR ([`crate::pivot::geqp3`]).
pub const PIVOT_NB: usize = 32;

/// The resolved blocking parameters of the local kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockParams {
    /// Panel width of the blocked `geqrt` (`QR3D_GEQRT_NB`).
    pub geqrt_nb: usize,
    /// Diagonal-tile width of the blocked `trsm`/`potrf` (`QR3D_TRI_NB`).
    pub tri_nb: usize,
    /// Panel width of the blocked pivoted `geqp3` (`QR3D_PIVOT_NB`).
    pub pivot_nb: usize,
    /// Rows of packed `op(A)` per gemm macro-tile (`QR3D_GEMM_MC`).
    pub gemm_mc: usize,
    /// Depth of the packed gemm macro-tiles (`QR3D_GEMM_KC`). Shared by
    /// every worker, so the per-element fma chain — and therefore the
    /// bitwise result — is independent of the thread count.
    pub gemm_kc: usize,
    /// Columns of packed `op(B)` per gemm macro-tile (`QR3D_GEMM_NC`).
    pub gemm_nc: usize,
    /// Flop-count threshold below which `gemm` stays on the simple
    /// unpacked triple loop. Programmatic only (no env override): the
    /// small-size numerics are pinned and must not move underfoot.
    pub gemm_block_threshold: usize,
    /// Requested SIMD dispatch level (`QR3D_SIMD`); `None` means `auto`
    /// (use the best level the CPU supports).
    pub simd: Option<SimdLevel>,
    /// Within-rank worker threads for the parallel block loops
    /// (`QR3D_RANK_THREADS`); the effective fanout also respects the
    /// machine executor's rank budget, see [`crate::par::fanout`].
    pub rank_threads: usize,
}

impl BlockParams {
    /// Upper clamp on any blocking width: beyond this the panel scratch
    /// would dwarf the caches the blocking exists to exploit.
    pub const MAX_NB: usize = 1024;

    /// Upper clamp on the gemm macro-tile extents: beyond this the pack
    /// buffers stop fitting in any cache level worth blocking for.
    pub const MAX_GEMM_TILE: usize = 1 << 16;

    /// The compiled-in defaults (the values every tuned gate and pinned
    /// record was measured with).
    pub fn defaults() -> BlockParams {
        BlockParams {
            geqrt_nb: crate::qr::GEQRT_NB,
            tri_nb: crate::tri::TRI_NB,
            pivot_nb: PIVOT_NB,
            gemm_mc: crate::gemm::MC,
            gemm_kc: crate::gemm::KC,
            gemm_nc: crate::gemm::NC,
            gemm_block_threshold: crate::gemm::BLOCK_THRESHOLD,
            simd: None,
            rank_threads: 1,
        }
    }

    /// Resolve the parameters from an arbitrary lookup function — the
    /// testable core of [`BlockParams::from_env`].
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> BlockParams {
        let parse = |key: &str, default: usize, max: usize| -> usize {
            match lookup(key).and_then(|v| v.trim().parse::<usize>().ok()) {
                Some(nb) if nb >= 1 => nb.min(max),
                _ => default,
            }
        };
        let d = Self::defaults();
        BlockParams {
            geqrt_nb: parse("QR3D_GEQRT_NB", d.geqrt_nb, Self::MAX_NB),
            tri_nb: parse("QR3D_TRI_NB", d.tri_nb, Self::MAX_NB),
            pivot_nb: parse("QR3D_PIVOT_NB", d.pivot_nb, Self::MAX_NB),
            gemm_mc: parse("QR3D_GEMM_MC", d.gemm_mc, Self::MAX_GEMM_TILE),
            gemm_kc: parse("QR3D_GEMM_KC", d.gemm_kc, Self::MAX_GEMM_TILE),
            gemm_nc: parse("QR3D_GEMM_NC", d.gemm_nc, Self::MAX_GEMM_TILE),
            gemm_block_threshold: d.gemm_block_threshold,
            simd: lookup("QR3D_SIMD").and_then(|v| SimdLevel::parse(&v)),
            rank_threads: parse("QR3D_RANK_THREADS", d.rank_threads, crate::par::MAX_FANOUT),
        }
    }

    /// Resolve the parameters from the process environment.
    pub fn from_env() -> BlockParams {
        BlockParams::from_lookup(|key| std::env::var(key).ok())
    }

    /// The process-wide active parameters: resolved from the environment
    /// on first use, frozen thereafter. This is what the blocked kernels
    /// read.
    pub fn active() -> &'static BlockParams {
        static ACTIVE: OnceLock<BlockParams> = OnceLock::new();
        ACTIVE.get_or_init(BlockParams::from_env)
    }
}

impl Default for BlockParams {
    fn default() -> Self {
        BlockParams::defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_tuned_constants() {
        let d = BlockParams::defaults();
        assert_eq!(d.geqrt_nb, crate::qr::GEQRT_NB);
        assert_eq!(d.tri_nb, crate::tri::TRI_NB);
        assert_eq!(d.pivot_nb, PIVOT_NB);
        assert_eq!(d.gemm_mc, crate::gemm::MC);
        assert_eq!(d.gemm_kc, crate::gemm::KC);
        assert_eq!(d.gemm_nc, crate::gemm::NC);
        assert_eq!(d.gemm_block_threshold, crate::gemm::BLOCK_THRESHOLD);
        assert_eq!(d.simd, None, "default SIMD dispatch is auto");
        assert_eq!(d.rank_threads, 1, "parallel fanout is opt-in");
        assert_eq!(BlockParams::default(), d);
    }

    #[test]
    fn gemm_simd_and_threads_overrides_apply() {
        let p = BlockParams::from_lookup(|key| match key {
            "QR3D_GEMM_MC" => Some("64".into()),
            "QR3D_GEMM_KC" => Some("128".into()),
            "QR3D_GEMM_NC" => Some("512".into()),
            "QR3D_SIMD" => Some("scalar".into()),
            "QR3D_RANK_THREADS" => Some("4".into()),
            _ => None,
        });
        assert_eq!(p.gemm_mc, 64);
        assert_eq!(p.gemm_kc, 128);
        assert_eq!(p.gemm_nc, 512);
        assert_eq!(p.simd, Some(SimdLevel::Scalar));
        assert_eq!(p.rank_threads, 4);
    }

    #[test]
    fn simd_garbage_means_auto_and_threads_clamp_to_fanout_cap() {
        let p = BlockParams::from_lookup(|key| match key {
            "QR3D_SIMD" => Some("avx9000".into()),
            "QR3D_RANK_THREADS" => Some("512".into()),
            "QR3D_GEMM_KC" => Some("99999999".into()),
            _ => None,
        });
        assert_eq!(p.simd, None);
        assert_eq!(p.rank_threads, crate::par::MAX_FANOUT);
        assert_eq!(p.gemm_kc, BlockParams::MAX_GEMM_TILE);
    }

    #[test]
    fn lookup_overrides_apply_per_key() {
        let p = BlockParams::from_lookup(|key| match key {
            "QR3D_GEQRT_NB" => Some("64".into()),
            "QR3D_PIVOT_NB" => Some(" 8 ".into()),
            _ => None,
        });
        assert_eq!(p.geqrt_nb, 64);
        assert_eq!(p.tri_nb, BlockParams::defaults().tri_nb);
        assert_eq!(p.pivot_nb, 8);
    }

    #[test]
    fn garbage_and_zero_fall_back_to_defaults() {
        let p = BlockParams::from_lookup(|key| match key {
            "QR3D_GEQRT_NB" => Some("not-a-number".into()),
            "QR3D_TRI_NB" => Some("0".into()),
            "QR3D_PIVOT_NB" => Some("-4".into()),
            _ => None,
        });
        assert_eq!(p, BlockParams::defaults());
    }

    #[test]
    fn huge_values_are_clamped() {
        let p =
            BlockParams::from_lookup(|key| (key == "QR3D_TRI_NB").then(|| "99999999".to_string()));
        assert_eq!(p.tri_nb, BlockParams::MAX_NB);
    }

    #[test]
    fn active_is_stable_across_calls() {
        let a = BlockParams::active();
        let b = BlockParams::active();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a, b), "resolved once, frozen for the process");
    }
}
