//! Runtime blocking parameters for the local kernels.
//!
//! The blocked kernels were tuned with fixed tile widths
//! ([`crate::qr::GEQRT_NB`], [`crate::tri::TRI_NB`], [`PIVOT_NB`]); this
//! module lifts them into a [`BlockParams`] value resolved **once** per
//! process, so deployments can override them through the environment —
//! the first step toward the roadmap's autotuned-blocking item:
//!
//! | variable         | kernel                      | default |
//! |------------------|-----------------------------|---------|
//! | `QR3D_GEQRT_NB`  | [`crate::qr::geqrt`] panels | 32      |
//! | `QR3D_TRI_NB`    | [`crate::tri::trsm`]/`potrf` tiles | 32 |
//! | `QR3D_PIVOT_NB`  | [`crate::pivot::geqp3`] panels | 32   |
//!
//! Values are parsed as positive integers and clamped to
//! [`BlockParams::MAX_NB`]; anything unparsable falls back to the
//! default (a misspelled override must not silently change numerics in
//! some *other* direction). The resolution happens lazily on first
//! kernel use and is then frozen for the process lifetime — blocking
//! widths changing mid-run would make repeat factorizations of the same
//! input non-reproducible.

use std::sync::OnceLock;

/// Default panel width of the blocked pivoted QR ([`crate::pivot::geqp3`]).
pub const PIVOT_NB: usize = 32;

/// The resolved blocking parameters of the local kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockParams {
    /// Panel width of the blocked `geqrt` (`QR3D_GEQRT_NB`).
    pub geqrt_nb: usize,
    /// Diagonal-tile width of the blocked `trsm`/`potrf` (`QR3D_TRI_NB`).
    pub tri_nb: usize,
    /// Panel width of the blocked pivoted `geqp3` (`QR3D_PIVOT_NB`).
    pub pivot_nb: usize,
}

impl BlockParams {
    /// Upper clamp on any blocking width: beyond this the panel scratch
    /// would dwarf the caches the blocking exists to exploit.
    pub const MAX_NB: usize = 1024;

    /// The compiled-in defaults (the values every tuned gate and pinned
    /// record was measured with).
    pub fn defaults() -> BlockParams {
        BlockParams {
            geqrt_nb: crate::qr::GEQRT_NB,
            tri_nb: crate::tri::TRI_NB,
            pivot_nb: PIVOT_NB,
        }
    }

    /// Resolve the parameters from an arbitrary lookup function — the
    /// testable core of [`BlockParams::from_env`].
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> BlockParams {
        let parse = |key: &str, default: usize| -> usize {
            match lookup(key).and_then(|v| v.trim().parse::<usize>().ok()) {
                Some(nb) if nb >= 1 => nb.min(Self::MAX_NB),
                _ => default,
            }
        };
        let d = Self::defaults();
        BlockParams {
            geqrt_nb: parse("QR3D_GEQRT_NB", d.geqrt_nb),
            tri_nb: parse("QR3D_TRI_NB", d.tri_nb),
            pivot_nb: parse("QR3D_PIVOT_NB", d.pivot_nb),
        }
    }

    /// Resolve the parameters from the process environment.
    pub fn from_env() -> BlockParams {
        BlockParams::from_lookup(|key| std::env::var(key).ok())
    }

    /// The process-wide active parameters: resolved from the environment
    /// on first use, frozen thereafter. This is what the blocked kernels
    /// read.
    pub fn active() -> &'static BlockParams {
        static ACTIVE: OnceLock<BlockParams> = OnceLock::new();
        ACTIVE.get_or_init(BlockParams::from_env)
    }
}

impl Default for BlockParams {
    fn default() -> Self {
        BlockParams::defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_tuned_constants() {
        let d = BlockParams::defaults();
        assert_eq!(d.geqrt_nb, crate::qr::GEQRT_NB);
        assert_eq!(d.tri_nb, crate::tri::TRI_NB);
        assert_eq!(d.pivot_nb, PIVOT_NB);
        assert_eq!(BlockParams::default(), d);
    }

    #[test]
    fn lookup_overrides_apply_per_key() {
        let p = BlockParams::from_lookup(|key| match key {
            "QR3D_GEQRT_NB" => Some("64".into()),
            "QR3D_PIVOT_NB" => Some(" 8 ".into()),
            _ => None,
        });
        assert_eq!(p.geqrt_nb, 64);
        assert_eq!(p.tri_nb, BlockParams::defaults().tri_nb);
        assert_eq!(p.pivot_nb, 8);
    }

    #[test]
    fn garbage_and_zero_fall_back_to_defaults() {
        let p = BlockParams::from_lookup(|key| match key {
            "QR3D_GEQRT_NB" => Some("not-a-number".into()),
            "QR3D_TRI_NB" => Some("0".into()),
            "QR3D_PIVOT_NB" => Some("-4".into()),
            _ => None,
        });
        assert_eq!(p, BlockParams::defaults());
    }

    #[test]
    fn huge_values_are_clamped() {
        let p =
            BlockParams::from_lookup(|key| (key == "QR3D_TRI_NB").then(|| "99999999".to_string()));
        assert_eq!(p.tri_nb, BlockParams::MAX_NB);
    }

    #[test]
    fn active_is_stable_across_calls() {
        let a = BlockParams::active();
        let b = BlockParams::active();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a, b), "resolved once, frozen for the process");
    }
}
