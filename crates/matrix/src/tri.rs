//! Triangular solves, Cholesky, and the sign-altered LU factorization used
//! by TSQR's Householder reconstruction (paper Appendix C.2, [BDG+15,
//! Lemma 6.2]).
//!
//! [`trsm`] and [`potrf`] are *blocked*: they partition the triangle into
//! [`TRI_NB`]-wide tiles, solve/factor the diagonal tiles with the scalar
//! inner kernels, and delegate the off-diagonal bulk to the cache-blocked
//! [`gemm`] — the standard right-looking LAPACK structure. Small problems
//! (below [`TRI_THRESHOLD`] multiply-adds) take the scalar reference paths
//! directly; [`trsm_reference`] and [`potrf_reference`] stay available as
//! the correctness baselines and benchmark references.

use crate::dense::Matrix;
use crate::gemm::{gemm, Trans};
use crate::scratch::{put_matrix, take_matrix, with_thread_arena, ScratchArena};

/// Which side the triangular matrix multiplies from in [`trsm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Solve `op(A)·X = B`.
    Left,
    /// Solve `X·op(A) = B`.
    Right,
}

/// Which triangle of `A` holds the data in [`trsm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Uplo {
    /// `A` is lower triangular.
    Lower,
    /// `A` is upper triangular.
    Upper,
}

/// Default diagonal-tile width of the blocked [`trsm`]/[`potrf`]. The
/// kernels read the runtime value from
/// [`crate::block::BlockParams::active`], overridable via
/// `QR3D_TRI_NB`; this constant is the compiled-in default.
pub const TRI_NB: usize = 32;

/// Below this many multiply-adds the blocking overhead is not worth it
/// and the scalar reference paths run instead.
pub const TRI_THRESHOLD: usize = 32 * 1024;

/// Triangular solve (BLAS `trsm`): returns `X` such that `op(A)·X = B`
/// (`Side::Left`) or `X·op(A) = B` (`Side::Right`), where `op(A) = Aᵀ`
/// if `transpose` and `A` otherwise; `unit_diag` treats `A`'s diagonal
/// as ones without reading it. Blocked (see module docs); scratch comes
/// from the calling thread's arena — use [`trsm_ws`] to pass an
/// explicit one.
///
/// # Panics
/// On shape mismatch or a zero pivot (non-unit diagonal only).
pub fn trsm(
    side: Side,
    uplo: Uplo,
    transpose: bool,
    unit_diag: bool,
    a: &Matrix,
    b: &Matrix,
) -> Matrix {
    let n = a.rows();
    let rhs = match side {
        Side::Left => b.cols(),
        Side::Right => b.rows(),
    };
    if n * n / 2 * rhs < TRI_THRESHOLD || n < 2 * TRI_NB {
        trsm_reference(side, uplo, transpose, unit_diag, a, b)
    } else {
        with_thread_arena(|ws| trsm_ws(ws, side, uplo, transpose, unit_diag, a, b))
    }
}

/// [`trsm`] with an explicit scratch arena (always the blocked path).
/// Allocates only the returned `X`; every intermediate — including the
/// `Side::Right` transposes — lives in arena scratch.
pub fn trsm_ws(
    ws: &mut dyn ScratchArena,
    side: Side,
    uplo: Uplo,
    transpose: bool,
    unit_diag: bool,
    a: &Matrix,
    b: &Matrix,
) -> Matrix {
    assert_eq!(a.rows(), a.cols(), "trsm: A must be square");
    match side {
        Side::Left => {
            let mut x = b.clone();
            solve_left_blocked(ws, uplo, transpose, unit_diag, a, &mut x);
            x
        }
        Side::Right => {
            // X·op(A) = B  ⟺  op(A)ᵀ·Xᵀ = Bᵀ, with Bᵀ staged in scratch.
            let (br, bc) = (b.rows(), b.cols());
            let mut xt = take_matrix(ws, bc, br);
            for j in 0..bc {
                let row = xt.row_mut(j);
                for (i, dst) in row.iter_mut().enumerate() {
                    *dst = b[(i, j)];
                }
            }
            solve_left_blocked(ws, uplo, !transpose, unit_diag, a, &mut xt);
            let mut out = Matrix::zeros(br, bc);
            for i in 0..br {
                let row = out.row_mut(i);
                for (j, dst) in row.iter_mut().enumerate() {
                    *dst = xt[(j, i)];
                }
            }
            put_matrix(ws, xt);
            out
        }
    }
}

/// The seed's scalar triangular solve, kept (like `gemm_reference`) as
/// the correctness baseline and benchmark reference for the blocked
/// [`trsm`]. Same contract.
pub fn trsm_reference(
    side: Side,
    uplo: Uplo,
    transpose: bool,
    unit_diag: bool,
    a: &Matrix,
    b: &Matrix,
) -> Matrix {
    assert_eq!(a.rows(), a.cols(), "trsm: A must be square");
    match side {
        Side::Left => solve_left(uplo, transpose, unit_diag, a, b),
        Side::Right => {
            // X·op(A) = B  ⟺  op(A)ᵀ·Xᵀ = Bᵀ.
            let xt = solve_left(uplo, !transpose, unit_diag, a, &b.transpose());
            xt.transpose()
        }
    }
}

/// Blocked left solve (left-looking), in place on `x`: for each
/// [`TRI_NB`]-row diagonal tile, one `gemm` with a long inner dimension
/// folds every already-solved block into the tile's right-hand sides,
/// then scalar substitution finishes the tile. The gemm's inner
/// dimension grows with the solve, so the packed microkernel dominates.
fn solve_left_blocked(
    ws: &mut dyn ScratchArena,
    uplo: Uplo,
    transpose: bool,
    unit_diag: bool,
    a: &Matrix,
    x: &mut Matrix,
) {
    let n = a.rows();
    assert_eq!(x.rows(), n, "trsm: B row count must match A");
    let rhs = x.cols();
    let nb = crate::block::BlockParams::active().tri_nb;
    // The effective matrix op(A) is lower triangular iff (lower XOR transpose).
    let eff_lower = matches!(uplo, Uplo::Lower) != transpose;
    let at = |i: usize, k: usize| if transpose { a[(k, i)] } else { a[(i, k)] };
    let nblocks = n.div_ceil(nb);
    for blk in 0..nblocks {
        // Tile rows i0..i1 in solve order (forward for effective-lower,
        // backward for effective-upper).
        let (i0, i1) = if eff_lower {
            (blk * nb, (blk * nb + nb).min(n))
        } else {
            let hi = n - blk * nb;
            (hi.saturating_sub(nb), hi)
        };
        let bw = i1 - i0;
        // Solved rows this tile depends on: everything before it in
        // solve order.
        let (d0, d1) = if eff_lower { (0, i0) } else { (i1, n) };
        if d0 < d1 && rhs > 0 {
            // X[i0..i1] −= op(A)[i0..i1, d0..d1] · X[d0..d1], one gemm.
            let mut tile = take_matrix(ws, bw, d1 - d0);
            for (r, i) in (i0..i1).enumerate() {
                let row = tile.row_mut(r);
                for (c, k) in (d0..d1).enumerate() {
                    row[c] = at(i, k);
                }
            }
            let mut xs = take_matrix(ws, d1 - d0, rhs);
            for (r, i) in (d0..d1).enumerate() {
                xs.row_mut(r).copy_from_slice(x.row(i));
            }
            let mut xt = take_matrix(ws, bw, rhs);
            for (r, i) in (i0..i1).enumerate() {
                xt.row_mut(r).copy_from_slice(x.row(i));
            }
            gemm(Trans::No, Trans::No, -1.0, &tile, &xs, 1.0, &mut xt);
            for (r, i) in (i0..i1).enumerate() {
                x.row_mut(i).copy_from_slice(xt.row(r));
            }
            put_matrix(ws, tile);
            put_matrix(ws, xs);
            put_matrix(ws, xt);
        }
        // Scalar substitution within the diagonal tile (in-tile deps
        // are ranges either side of the pivot row — no index buffers).
        let mut solve_row = |i: usize| {
            let deps = if eff_lower { i0..i } else { i + 1..i1 };
            for k in deps {
                let aik = at(i, k);
                if aik == 0.0 {
                    continue;
                }
                // x[i, :] -= aik · x[k, :] on the dispatched fused axpy.
                let (xi, xk) = x.row_pair_mut(i, k);
                crate::simd::fused_axpy(-aik, xk, xi);
            }
            if !unit_diag {
                let d = at(i, i);
                assert!(d != 0.0, "trsm: zero pivot at {i}");
                for j in 0..rhs {
                    x[(i, j)] /= d;
                }
            }
        };
        if eff_lower {
            for i in i0..i1 {
                solve_row(i);
            }
        } else {
            for i in (i0..i1).rev() {
                solve_row(i);
            }
        }
    }
}

fn solve_left(uplo: Uplo, transpose: bool, unit_diag: bool, a: &Matrix, b: &Matrix) -> Matrix {
    let n = a.rows();
    assert_eq!(b.rows(), n, "trsm: B row count must match A");
    // The effective matrix op(A) is lower triangular iff (lower XOR transpose).
    let eff_lower = matches!(uplo, Uplo::Lower) != transpose;
    let at = |i: usize, k: usize| if transpose { a[(k, i)] } else { a[(i, k)] };
    let mut x = b.clone();
    let idx: Vec<usize> = if eff_lower {
        (0..n).collect()
    } else {
        (0..n).rev().collect()
    };
    for &i in &idx {
        // Subtract contributions of already-solved rows.
        let deps: Vec<usize> = if eff_lower {
            (0..i).collect()
        } else {
            (i + 1..n).collect()
        };
        for &k in &deps {
            let aik = at(i, k);
            if aik == 0.0 {
                continue;
            }
            for j in 0..b.cols() {
                let xkj = x[(k, j)];
                x[(i, j)] -= aik * xkj;
            }
        }
        if !unit_diag {
            let d = at(i, i);
            assert!(d != 0.0, "trsm: zero pivot at {i}");
            for j in 0..b.cols() {
                x[(i, j)] /= d;
            }
        }
    }
    x
}

/// The sign-altered LU factorization of [BDG+15, Lemma 6.2], as described
/// in the paper's Appendix C.2: given square `X`, produce unit lower
/// triangular `L`, upper triangular `U`, and a diagonal sign matrix `S`
/// (returned as a vector of ±1) such that `X + S = L·U`.
///
/// Before eliminating column `j`, `S_jj = sgn(X̂_jj)` is added to the
/// diagonal, which makes the pivot magnitude `|X̂_jj| + 1 ≥ 1`: no pivoting
/// is ever needed, and when `X` is the top block of a matrix with
/// orthonormal columns the growth is provably benign.
pub fn lu_sign(x: &Matrix) -> (Matrix, Matrix, Vec<f64>) {
    let n = x.rows();
    assert_eq!(x.cols(), n, "lu_sign: X must be square");
    let mut work = x.clone();
    let mut l = Matrix::identity(n);
    let mut s = vec![0.0; n];
    for j in 0..n {
        let sj = if work[(j, j)] >= 0.0 { 1.0 } else { -1.0 };
        s[j] = sj;
        work[(j, j)] += sj;
        let pivot = work[(j, j)];
        for i in j + 1..n {
            let lij = work[(i, j)] / pivot;
            l[(i, j)] = lij;
            work[(i, j)] = 0.0;
            for k in j + 1..n {
                let wjk = work[(j, k)];
                work[(i, k)] -= lij * wjk;
            }
        }
    }
    let u = work.upper_triangular_part();
    (l, u, s)
}

/// Cholesky breakdown: the matrix handed to [`potrf`] was not (numerically)
/// positive definite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NotPositiveDefinite {
    /// Column at which elimination met a non-positive pivot.
    pub pivot: usize,
    /// The offending pivot value (`≤ 0`, or NaN).
    pub value: f64,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cholesky breakdown: pivot {} is {:.3e} (matrix not positive definite)",
            self.pivot, self.value
        )
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Cholesky factorization (LAPACK `potrf`, upper form): for symmetric
/// positive definite `G`, the upper-triangular `R` with `RᵀR = G`.
///
/// Reads only the upper triangle of `G`. Returns
/// [`Err(NotPositiveDefinite)`](NotPositiveDefinite) instead of panicking
/// when a pivot falls to or below `n·ε` times the largest diagonal entry
/// — i.e. when `G` is *numerically* not positive definite. (A strict
/// `pivot ≤ 0` test would let exactly-singular matrices squeak through on
/// rounding noise.) Breakdown is an *expected* outcome for CholeskyQR on
/// ill-conditioned inputs — the Gram matrix squares the condition number
/// — and callers use the error to fall back to a Householder algorithm.
///
/// # Panics
/// If `G` is not square.
pub fn potrf(g: &Matrix) -> Result<Matrix, NotPositiveDefinite> {
    let n = g.rows();
    if n * n / 2 * n / 3 < TRI_THRESHOLD || n < 2 * TRI_NB {
        potrf_reference(g)
    } else {
        with_thread_arena(|ws| potrf_ws(ws, g))
    }
}

/// [`potrf`] with an explicit scratch arena (always the blocked
/// right-looking path): unblocked Cholesky on each [`TRI_NB`] diagonal
/// tile, scalar forward substitution for its block row, and a
/// `gemm`-powered symmetric trailing update.
pub fn potrf_ws(ws: &mut dyn ScratchArena, g: &Matrix) -> Result<Matrix, NotPositiveDefinite> {
    let n = g.rows();
    assert_eq!(g.cols(), n, "potrf: G must be square");
    let mut r = g.upper_triangular_part();
    let nb = crate::block::BlockParams::active().tri_nb;
    let scale = (0..n).map(|i| g[(i, i)]).fold(0.0f64, f64::max);
    let tol = scale * f64::EPSILON * n as f64;
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + nb).min(n);
        // Unblocked Cholesky of the diagonal tile (global pivot indices,
        // same breakdown rule as the reference).
        for j in j0..j1 {
            let pivot = r[(j, j)];
            if pivot <= tol || pivot.is_nan() {
                return Err(NotPositiveDefinite {
                    pivot: j,
                    value: pivot,
                });
            }
            let d = pivot.sqrt();
            r[(j, j)] = d;
            for k in j + 1..j1 {
                r[(j, k)] /= d;
            }
            for i in j + 1..j1 {
                let rji = r[(j, i)];
                if rji == 0.0 {
                    continue;
                }
                for k in i..j1 {
                    let rjk = r[(j, k)];
                    r[(i, k)] -= rji * rjk;
                }
            }
        }
        if j1 < n {
            // Block row: solve R₁₁ᵀ·R₁₂ = G₁₂ in place (scalar forward
            // substitution — lower-order work).
            for i in j0..j1 {
                for k in j0..i {
                    let rki = r[(k, i)];
                    if rki == 0.0 {
                        continue;
                    }
                    for c in j1..n {
                        let rkc = r[(k, c)];
                        r[(i, c)] -= rki * rkc;
                    }
                }
                let d = r[(i, i)];
                for c in j1..n {
                    r[(i, c)] /= d;
                }
            }
            // Trailing update G₂₂ −= R₁₂ᵀ·R₁₂, upper triangle only:
            // per column block c0..c1, the rows needing updates are
            // j1..c1, i.e. R₁₂'s leading c1−j1 columns — so the flop
            // count stays at the half-syrk level while the work runs
            // through the blocked gemm.
            let (bw, nt) = (j1 - j0, n - j1);
            let mut r12 = take_matrix(ws, bw, nt);
            for (i, row) in (j0..j1).enumerate() {
                r12.row_mut(i).copy_from_slice(&r.row(row)[j1..n]);
            }
            let tb = 4 * nb;
            let mut c0 = j1;
            while c0 < n {
                let c1 = (c0 + tb).min(n);
                let rw = c1 - j1; // update rows j1..c1 (cols 0..rw of R₁₂)
                let mut a1 = take_matrix(ws, bw, rw);
                for i in 0..bw {
                    a1.row_mut(i).copy_from_slice(&r12.row(i)[..rw]);
                }
                let mut a2 = take_matrix(ws, bw, c1 - c0);
                for i in 0..bw {
                    a2.row_mut(i).copy_from_slice(&r12.row(i)[c0 - j1..c1 - j1]);
                }
                let mut s = take_matrix(ws, rw, c1 - c0);
                gemm(Trans::Yes, Trans::No, 1.0, &a1, &a2, 0.0, &mut s);
                for i in 0..rw {
                    let lo = (j1 + i).max(c0);
                    let dst = &mut r.row_mut(j1 + i)[lo..c1];
                    let src = &s.row(i)[lo - c0..c1 - c0];
                    for (d, v) in dst.iter_mut().zip(src) {
                        *d -= v;
                    }
                }
                put_matrix(ws, a1);
                put_matrix(ws, a2);
                put_matrix(ws, s);
                c0 = c1;
            }
            put_matrix(ws, r12);
        }
        j0 = j1;
    }
    Ok(r)
}

/// The seed's unblocked Cholesky, kept as the correctness baseline and
/// benchmark reference for the blocked [`potrf`]. Same contract.
pub fn potrf_reference(g: &Matrix) -> Result<Matrix, NotPositiveDefinite> {
    let n = g.rows();
    assert_eq!(g.cols(), n, "potrf: G must be square");
    let mut r = g.upper_triangular_part();
    // Relative breakdown threshold: eliminating a column of a PD matrix
    // can only shrink later pivots, so anything at rounding level of the
    // largest diagonal signals numerical indefiniteness.
    let scale = (0..n).map(|i| g[(i, i)]).fold(0.0f64, f64::max);
    let tol = scale * f64::EPSILON * n as f64;
    for j in 0..n {
        let pivot = r[(j, j)];
        if pivot <= tol || pivot.is_nan() {
            return Err(NotPositiveDefinite {
                pivot: j,
                value: pivot,
            });
        }
        let d = pivot.sqrt();
        r[(j, j)] = d;
        for k in j + 1..n {
            r[(j, k)] /= d;
        }
        for i in j + 1..n {
            let rji = r[(j, i)];
            if rji == 0.0 {
                continue;
            }
            for k in i..n {
                let rjk = r[(j, k)];
                r[(i, k)] -= rji * rjk;
            }
        }
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, matmul_tn};
    use crate::qr::{geqrt, thin_q};

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64, what: &str) {
        let err = a.sub(b).max_abs();
        assert!(err <= tol, "{what}: max abs err {err} > {tol}");
    }

    /// A well-conditioned triangular test matrix.
    fn tri(n: usize, uplo: Uplo, unit: bool, seed: u64) -> Matrix {
        let r = Matrix::random(n, n, seed);
        Matrix::from_fn(n, n, |i, j| {
            let keep = match uplo {
                Uplo::Lower => j <= i,
                Uplo::Upper => j >= i,
            };
            if i == j {
                if unit {
                    1.0
                } else {
                    2.0 + r[(i, j)].abs()
                }
            } else if keep {
                0.5 * r[(i, j)]
            } else {
                0.0
            }
        })
    }

    #[test]
    fn all_sixteen_trsm_variants_solve() {
        for side in [Side::Left, Side::Right] {
            for uplo in [Uplo::Lower, Uplo::Upper] {
                for transpose in [false, true] {
                    for unit in [false, true] {
                        let n = 6;
                        let a = tri(n, uplo, unit, 42);
                        let b = Matrix::random(n, 4, 43);
                        // For Right, B must be r × n; reshape.
                        let b = match side {
                            Side::Left => b,
                            Side::Right => b.transpose(),
                        };
                        let x = trsm(side, uplo, transpose, unit, &a, &b);
                        let opa = if transpose { a.transpose() } else { a.clone() };
                        let recovered = match side {
                            Side::Left => matmul(&opa, &x),
                            Side::Right => matmul(&x, &opa),
                        };
                        assert_close(
                            &recovered,
                            &b,
                            1e-11,
                            &format!("{side:?} {uplo:?} trans={transpose} unit={unit}"),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn trsm_identity_is_noop() {
        let b = Matrix::random(5, 3, 1);
        let x = trsm(
            Side::Left,
            Uplo::Upper,
            false,
            false,
            &Matrix::identity(5),
            &b,
        );
        assert_close(&x, &b, 0.0, "I X = B");
    }

    #[test]
    fn trsm_unit_diag_ignores_stored_diagonal() {
        // Store garbage on the diagonal; unit_diag must not read it.
        let mut a = tri(4, Uplo::Lower, true, 2);
        for i in 0..4 {
            a[(i, i)] = f64::NAN;
        }
        let b = Matrix::random(4, 2, 3);
        let x = trsm(Side::Left, Uplo::Lower, false, true, &a, &b);
        assert!(x.max_abs().is_finite());
    }

    #[test]
    #[should_panic(expected = "zero pivot")]
    fn trsm_zero_pivot_detected() {
        let mut a = Matrix::identity(3);
        a[(1, 1)] = 0.0;
        let _ = trsm(
            Side::Left,
            Uplo::Upper,
            false,
            false,
            &a,
            &Matrix::identity(3),
        );
    }

    #[test]
    fn trsm_empty_rhs() {
        let a = tri(3, Uplo::Upper, false, 5);
        let b = Matrix::zeros(3, 0);
        let x = trsm(Side::Left, Uplo::Upper, false, false, &a, &b);
        assert_eq!((x.rows(), x.cols()), (3, 0));
    }

    #[test]
    fn lu_sign_reconstructs_x_plus_s() {
        for seed in [1_u64, 2, 3] {
            let n = 7;
            let x = Matrix::random(n, n, seed);
            let (l, u, s) = lu_sign(&x);
            assert!(l.is_unit_lower_trapezoidal(0.0), "L unit lower");
            assert!(u.is_upper_triangular(0.0), "U upper");
            let mut xps = x.clone();
            for i in 0..n {
                assert!(s[i] == 1.0 || s[i] == -1.0, "S is ±1");
                xps[(i, i)] += s[i];
            }
            assert_close(&matmul(&l, &u), &xps, 1e-12, "LU = X + S");
        }
    }

    #[test]
    fn lu_sign_on_orthonormal_top_block_is_stable() {
        // X = top n × n block of an m × n orthonormal Q: the [BDG+15]
        // guarantee is |L| entries ≤ 1 (implicit partial pivoting).
        let a = Matrix::random(30, 8, 9);
        let f = geqrt(&a);
        let q1 = thin_q(&f.v, &f.t);
        let x = q1.submatrix(0, 8, 0, 8);
        let (l, u, s) = lu_sign(&x);
        assert!(l.max_abs() <= 1.0 + 1e-12, "elimination growth bounded");
        let mut xps = x.clone();
        for i in 0..8 {
            xps[(i, i)] += s[i];
        }
        assert_close(&matmul(&l, &u), &xps, 1e-13, "LU = X + S");
    }

    #[test]
    fn lu_sign_zero_matrix() {
        let (l, u, s) = lu_sign(&Matrix::zeros(4, 4));
        assert_eq!(l, Matrix::identity(4));
        assert_eq!(s, vec![1.0; 4]);
        assert_eq!(u, Matrix::identity(4)); // 0 + I = I·I
    }

    #[test]
    fn lu_sign_one_by_one() {
        let (l, u, s) = lu_sign(&Matrix::from_vec(1, 1, vec![-0.25]));
        assert_eq!(l[(0, 0)], 1.0);
        assert_eq!(s[0], -1.0);
        assert_eq!(u[(0, 0)], -1.25);
    }

    #[test]
    fn trsm_right_with_unit_lower_transpose_matches_reconstruction_use() {
        // The reconstruction computes T = (U·S)·L⁻ᵀ, i.e. solves X·Lᵀ = U·S.
        let n = 6;
        let l = tri(n, Uplo::Lower, true, 11);
        let us = Matrix::random(n, n, 12);
        let x = trsm(Side::Right, Uplo::Lower, true, true, &l, &us);
        let lt = l.transpose();
        assert_close(&matmul(&x, &lt), &us, 1e-11, "X Lᵀ = US");
    }

    #[test]
    fn blocked_trsm_matches_reference_above_threshold() {
        // Sizes that cross TRI_THRESHOLD so the public `trsm` takes the
        // blocked path; every side/uplo/transpose/unit combination must
        // agree with the scalar reference to rounding.
        let n = 3 * TRI_NB + 5;
        for side in [Side::Left, Side::Right] {
            for uplo in [Uplo::Lower, Uplo::Upper] {
                for transpose in [false, true] {
                    for unit in [false, true] {
                        let a = tri(n, uplo, unit, 77);
                        let b = Matrix::random(n, n + 3, 78);
                        let b = match side {
                            Side::Left => b,
                            Side::Right => b.transpose(),
                        };
                        let got = trsm(side, uplo, transpose, unit, &a, &b);
                        let want = trsm_reference(side, uplo, transpose, unit, &a, &b);
                        assert_close(
                            &got,
                            &want,
                            1e-9,
                            &format!("{side:?} {uplo:?} trans={transpose} unit={unit}"),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn blocked_trsm_unit_diag_ignores_stored_diagonal() {
        let n = 3 * TRI_NB;
        let mut a = tri(n, Uplo::Lower, true, 79);
        for i in 0..n {
            a[(i, i)] = f64::NAN;
        }
        let b = Matrix::random(n, n, 80);
        let x = trsm(Side::Left, Uplo::Lower, false, true, &a, &b);
        assert!(x.max_abs().is_finite());
    }

    #[test]
    #[should_panic(expected = "zero pivot at 40")]
    fn blocked_trsm_zero_pivot_detected() {
        let n = 3 * TRI_NB;
        let mut a = tri(n, Uplo::Upper, false, 81);
        a[(40, 40)] = 0.0;
        let _ = trsm(
            Side::Left,
            Uplo::Upper,
            false,
            false,
            &a,
            &Matrix::random(n, n, 82),
        );
    }

    #[test]
    fn blocked_potrf_matches_reference_above_threshold() {
        let n = 3 * TRI_NB + 5;
        let a = Matrix::random(2 * n, n, 83);
        let g = matmul_tn(&a, &a);
        let got = potrf(&g).expect("SPD");
        let want = potrf_reference(&g).expect("SPD");
        assert!(got.is_upper_triangular(0.0));
        assert_close(
            &got,
            &want,
            1e-8 * g.max_abs(),
            "blocked vs reference potrf",
        );
        assert_close(&matmul_tn(&got, &got), &g, 1e-8 * g.max_abs(), "RᵀR = G");
    }

    #[test]
    fn blocked_potrf_breakdown_is_detected() {
        // A large rank-deficient Gram matrix must break down in the
        // blocked path too (possibly at a slightly different pivot than
        // the reference — rounding — but deterministically).
        let n = 3 * TRI_NB;
        let a = Matrix::random(n / 2, n, 84); // rank ≤ n/2
        let g = matmul_tn(&a, &a);
        let e1 = potrf(&g).unwrap_err();
        let e2 = potrf(&g).unwrap_err();
        assert_eq!(e1, e2, "breakdown must be deterministic");
        assert!(potrf_reference(&g).is_err());
    }

    #[test]
    fn potrf_reconstructs_spd_matrix() {
        for seed in [30u64, 31, 32] {
            let n = 8;
            let a = Matrix::random(3 * n, n, seed);
            let g = matmul_tn(&a, &a); // SPD (A full rank a.s.)
            let r = potrf(&g).expect("gram of full-rank A is SPD");
            assert!(r.is_upper_triangular(0.0));
            for i in 0..n {
                assert!(r[(i, i)] > 0.0, "positive diagonal");
            }
            assert_close(&matmul_tn(&r, &r), &g, 1e-11, "RᵀR = G");
        }
    }

    #[test]
    fn potrf_identity() {
        assert_eq!(potrf(&Matrix::identity(5)).unwrap(), Matrix::identity(5));
    }

    #[test]
    fn potrf_reads_only_upper_triangle() {
        // Garbage below the diagonal must not affect the result.
        let a = Matrix::random(10, 4, 33);
        let g = matmul_tn(&a, &a);
        let mut dirty = g.clone();
        for i in 0..4 {
            for j in 0..i {
                dirty[(i, j)] = f64::NAN;
            }
        }
        assert_eq!(potrf(&g).unwrap(), potrf(&dirty).unwrap());
    }

    #[test]
    fn potrf_rejects_indefinite() {
        let mut g = Matrix::identity(3);
        g[(1, 1)] = -2.0;
        let err = potrf(&g).unwrap_err();
        assert_eq!(err.pivot, 1);
        assert!(err.value < 0.0);
        assert!(err.to_string().contains("not positive definite"));
    }

    #[test]
    fn potrf_rejects_rank_deficient() {
        // G = vvᵀ has rank 1: elimination must hit a zero pivot.
        let v = Matrix::random(4, 1, 34);
        let g = matmul(&v, &v.transpose());
        assert!(potrf(&g).is_err());
    }

    #[test]
    fn potrf_empty() {
        assert_eq!(potrf(&Matrix::zeros(0, 0)).unwrap(), Matrix::zeros(0, 0));
    }

    #[test]
    fn gram_solve_roundtrip() {
        // Solve with both triangles of a Cholesky-like product.
        let a = Matrix::random(5, 5, 20);
        let g = matmul_tn(&a, &a); // SPD-ish
        let f = geqrt(&g);
        let b = Matrix::random(5, 2, 21);
        // Solve R x = b via trsm and check residual.
        let x = trsm(Side::Left, Uplo::Upper, false, false, &f.r, &b);
        assert_close(&matmul(&f.r, &x), &b, 1e-10, "R x = b");
    }
}
