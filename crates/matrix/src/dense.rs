//! Dense row-major matrices of `f64` *words* (the paper's unit of data).

use std::ops::{Index, IndexMut};

/// Minimal deterministic SplitMix64 generator for reproducible test
/// matrices (replaces the external `rand` dependency; only uniformity and
/// reproducibility matter here).
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform on (-1, 1).
    fn next_unit(&mut self) -> f64 {
        // 53 random mantissa bits → [0, 1), then map to (-1, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        2.0 * u - 1.0
    }
}

/// A dense row-major matrix of `f64`.
///
/// This is deliberately a simple owned type: the paper's algorithms move
/// explicit blocks between processors, so block extraction/insertion
/// ([`Matrix::submatrix`], [`Matrix::set_submatrix`]) and row-set gathers
/// ([`Matrix::take_rows`]) are the fundamental operations, not views.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wrap an existing row-major buffer.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// A matrix with i.i.d. entries uniform on (-1, 1), reproducible from
    /// `seed`. (Uniform suffices for the paper's workloads; these are
    /// generic dense test matrices.)
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let data = (0..rows * cols).map(|_| rng.next_unit()).collect();
        Matrix { rows, cols, data }
    }

    /// Copy a borrowed row-major buffer into a matrix.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_slice(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The underlying row-major buffer, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the underlying row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` mutably together with row `k` shared — the
    /// writer/reader pair of an axpy-style row update (`row_i += α·row_k`).
    ///
    /// # Panics
    /// If `i == k` or either index is out of bounds.
    pub fn row_pair_mut(&mut self, i: usize, k: usize) -> (&mut [f64], &[f64]) {
        assert_ne!(i, k, "row_pair_mut: rows must be distinct");
        let w = self.cols;
        if i < k {
            let (lo, hi) = self.data.split_at_mut(k * w);
            (&mut lo[i * w..(i + 1) * w], &hi[..w])
        } else {
            let (lo, hi) = self.data.split_at_mut(i * w);
            (&mut hi[..w], &lo[k * w..(k + 1) * w])
        }
    }

    /// Copy of the submatrix `rows r0..r1`, `cols c0..c1`.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows, "row range out of bounds");
        assert!(c0 <= c1 && c1 <= self.cols, "col range out of bounds");
        let mut out = Matrix::zeros(r1 - r0, c1 - c0);
        for i in r0..r1 {
            out.row_mut(i - r0).copy_from_slice(&self.row(i)[c0..c1]);
        }
        out
    }

    /// Overwrite the block whose top-left corner is `(r0, c0)` with `block`.
    pub fn set_submatrix(&mut self, r0: usize, c0: usize, block: &Matrix) {
        assert!(r0 + block.rows <= self.rows, "block exceeds rows");
        assert!(c0 + block.cols <= self.cols, "block exceeds cols");
        for i in 0..block.rows {
            self.row_mut(r0 + i)[c0..c0 + block.cols].copy_from_slice(block.row(i));
        }
    }

    /// The rows with the given global indices, in the given order.
    pub fn take_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (l, &g) in idx.iter().enumerate() {
            out.row_mut(l).copy_from_slice(self.row(g));
        }
        out
    }

    /// Scatter rows back: `self.row(idx[l]) = block.row(l)`.
    pub fn put_rows(&mut self, idx: &[usize], block: &Matrix) {
        assert_eq!(idx.len(), block.rows, "row count mismatch");
        assert_eq!(self.cols, block.cols, "col count mismatch");
        for (l, &g) in idx.iter().enumerate() {
            self.row_mut(g).copy_from_slice(block.row(l));
        }
    }

    /// Stack vertically: `[self; other]`.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack: column mismatch");
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Stack horizontally: `[self other]`.
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack: row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self -= other`.
    pub fn sub_assign(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
    }

    /// `self *= s`.
    pub fn scale(&mut self, s: f64) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// `self - other` as a new matrix.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.sub_assign(other);
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Keep only the upper triangle (entries below the main diagonal
    /// zeroed). Works for rectangular matrices too.
    pub fn upper_triangular_part(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| {
            if j >= i {
                self[(i, j)]
            } else {
                0.0
            }
        })
    }

    /// True if all entries strictly below the main diagonal are ≤ `tol`
    /// in magnitude.
    pub fn is_upper_triangular(&self, tol: f64) -> bool {
        for i in 1..self.rows {
            for j in 0..i.min(self.cols) {
                if self[(i, j)].abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// True if `self` is unit lower trapezoidal: ones on the main diagonal
    /// and zeros strictly above it (within `tol`).
    pub fn is_unit_lower_trapezoidal(&self, tol: f64) -> bool {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if i == j {
                    if (self[(i, j)] - 1.0).abs() > tol {
                        return false;
                    }
                } else if j > i && self[(i, j)].abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_identity_shapes() {
        let z = Matrix::zeros(3, 5);
        assert_eq!((z.rows(), z.cols()), (3, 5));
        assert_eq!(z.frobenius_norm(), 0.0);
        let i = Matrix::identity(4);
        assert_eq!(i[(2, 2)], 1.0);
        assert_eq!(i[(2, 3)], 0.0);
        assert_eq!(i.frobenius_norm(), 2.0);
    }

    #[test]
    fn from_fn_and_indexing() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(1, 2)], 12.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn random_is_reproducible_and_bounded() {
        let a = Matrix::random(10, 7, 123);
        let b = Matrix::random(10, 7, 123);
        let c = Matrix::random(10, 7, 124);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.max_abs() < 1.0);
        assert!(a.frobenius_norm() > 0.0);
    }

    #[test]
    fn submatrix_roundtrip() {
        let m = Matrix::from_fn(5, 6, |i, j| (i * 6 + j) as f64);
        let s = m.submatrix(1, 4, 2, 5);
        assert_eq!((s.rows(), s.cols()), (3, 3));
        assert_eq!(s[(0, 0)], m[(1, 2)]);
        assert_eq!(s[(2, 2)], m[(3, 4)]);
        let mut back = Matrix::zeros(5, 6);
        back.set_submatrix(1, 2, &s);
        assert_eq!(back[(3, 4)], m[(3, 4)]);
        assert_eq!(back[(0, 0)], 0.0);
    }

    #[test]
    fn empty_submatrix_is_ok() {
        let m = Matrix::random(4, 4, 1);
        let s = m.submatrix(2, 2, 0, 4);
        assert_eq!((s.rows(), s.cols()), (0, 4));
        let s2 = m.submatrix(0, 4, 3, 3);
        assert_eq!((s2.rows(), s2.cols()), (4, 0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn submatrix_bounds_checked() {
        let m = Matrix::zeros(3, 3);
        let _ = m.submatrix(0, 4, 0, 3);
    }

    #[test]
    fn take_put_rows_roundtrip() {
        let m = Matrix::from_fn(6, 2, |i, j| (i * 2 + j) as f64);
        let idx = [4, 0, 2];
        let t = m.take_rows(&idx);
        assert_eq!(t.row(0), m.row(4));
        assert_eq!(t.row(1), m.row(0));
        let mut back = Matrix::zeros(6, 2);
        back.put_rows(&idx, &t);
        assert_eq!(back.row(4), m.row(4));
        assert_eq!(back.row(0), m.row(0));
        assert_eq!(back.row(2), m.row(2));
        assert_eq!(back.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn stacking() {
        let a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(1, 2, |_, j| (10 + j) as f64);
        let v = a.vstack(&b);
        assert_eq!((v.rows(), v.cols()), (3, 2));
        assert_eq!(v.row(2), &[10.0, 11.0]);
        let c = Matrix::from_fn(2, 1, |i, _| (20 + i) as f64);
        let h = a.hstack(&c);
        assert_eq!((h.rows(), h.cols()), (2, 3));
        assert_eq!(h[(1, 2)], 21.0);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::random(4, 7, 5);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(3, 2)], m[(2, 3)]);
    }

    #[test]
    fn arithmetic_ops() {
        let mut a = Matrix::from_fn(2, 2, |i, j| (i * 2 + j) as f64);
        let b = Matrix::identity(2);
        a.add_assign(&b);
        assert_eq!(a[(0, 0)], 1.0);
        a.sub_assign(&b);
        assert_eq!(a[(0, 0)], 0.0);
        a.scale(3.0);
        assert_eq!(a[(1, 1)], 9.0);
        let d = a.sub(&a);
        assert_eq!(d.frobenius_norm(), 0.0);
    }

    #[test]
    fn triangular_predicates() {
        let r = Matrix::from_fn(3, 3, |i, j| if j >= i { 1.0 } else { 0.0 });
        assert!(r.is_upper_triangular(0.0));
        let mut not_r = r.clone();
        not_r[(2, 0)] = 0.5;
        assert!(!not_r.is_upper_triangular(1e-12));
        assert!(not_r.upper_triangular_part().is_upper_triangular(0.0));

        let v = Matrix::from_fn(4, 2, |i, j| {
            if i == j {
                1.0
            } else if i > j {
                0.3
            } else {
                0.0
            }
        });
        assert!(v.is_unit_lower_trapezoidal(0.0));
        let mut not_v = v.clone();
        not_v[(0, 1)] = 0.1;
        assert!(!not_v.is_unit_lower_trapezoidal(1e-12));
    }

    #[test]
    fn upper_trapezoidal_rectangular() {
        // is_upper_triangular must handle rows > cols (trapezoid check).
        let m = Matrix::from_fn(5, 2, |i, j| if j >= i { 2.0 } else { 0.0 });
        assert!(m.is_upper_triangular(0.0));
    }
}
