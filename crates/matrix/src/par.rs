//! Within-rank worker pool for the embarrassingly parallel block loops.
//!
//! The paper's cost model (and the cost advisor's constants) charge
//! *single-thread* flop formulas per rank; real hybrid runs
//! (MPI + OpenMP in the reference implementations) then multiply the
//! local flop rate by running the trailing-update loops on a few cores.
//! This module is that multiplier: a tiny std-only helper pool that
//! [`crate::gemm::gemm`] uses to split its macro-tile row bands across
//! `QR3D_RANK_THREADS` workers. `larfb` trailing updates, trsm long-k
//! updates, and the CholeskyQR2 Grams all funnel through `gemm`, so one
//! parallel entry point covers every O(n³) loop.
//!
//! ## Determinism
//!
//! Work is handed out as *disjoint output row bands*: each worker owns
//! its rows of `C` exclusively and runs the identical packed-loop
//! arithmetic over the full `k` extent, so the per-element fma chain is
//! the same regardless of how many workers ran (see
//! `crate::gemm`). Results are bitwise-identical to
//! `QR3D_RANK_THREADS=1` by construction — pinned by
//! `tests/simd_par_bitwise.rs`.
//!
//! ## Thread budgeting
//!
//! A simulated machine already runs one OS thread per rank. To keep
//! `P ranks × T workers` from oversubscribing the host,
//! [`set_concurrent_ranks`] (called by the machine executor when it
//! spawns rank threads) divides the available cores among ranks:
//! `fanout = min(QR3D_RANK_THREADS, max(1, cores / ranks))`. Tests and
//! benches that need a specific fanout regardless of core count use
//! [`with_forced_fanout`].
//!
//! ## Pool mechanics
//!
//! Helper threads are spawned lazily on first demand (never more than
//! [`MAX_FANOUT`]` - 1`) and parked on a condvar between jobs. A job is
//! `n` chunks of a caller-borrowed `Fn(usize)`: the caller enqueues
//! chunks `1..n`, runs chunk `0` itself, then *drains its own remaining
//! chunks* from the queue (so a busy pool can never delay a caller
//! indefinitely — it degrades to serial execution), and finally blocks
//! until stolen chunks complete. Panics in any chunk are captured and
//! re-raised on the caller. With `QR3D_PIN_CORES=1` each helper pins
//! itself to a core at spawn (best effort — see [`crate::affinity`]).

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crate::block::BlockParams;

/// Hard cap on a job's parallel width (and on pool helpers + 1).
pub const MAX_FANOUT: usize = 16;

/// One borrowed job: a lifetime-erased chunk closure plus completion
/// bookkeeping. The erased pointer is only dereferenced while the
/// submitting [`run_chunks`] call is blocked in this module, which is
/// what makes the erasure sound (same discipline as the machine
/// executor's job handshake).
struct TaskShared {
    /// Type-erased `&F where F: Fn(usize) + Sync`.
    f: *const (),
    /// Monomorphized trampoline restoring the concrete `F`.
    call: unsafe fn(*const (), usize),
    /// Total chunks in the job.
    total: usize,
    /// Chunks finished (panicked chunks count as finished).
    done: AtomicUsize,
    /// Pairs with `cv` for the caller's completion wait.
    lock: Mutex<()>,
    cv: Condvar,
    /// First captured panic payload, re-raised on the caller.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: `f` points at an `F: Sync` borrowed by the submitting thread
// for the full lifetime of the job (run_chunks does not return before
// `done == total`), and the trampoline only shares it immutably.
unsafe impl Send for TaskShared {}
unsafe impl Sync for TaskShared {}

struct PoolState {
    items: VecDeque<(Arc<TaskShared>, usize)>,
    helpers: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    cv: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            items: VecDeque::new(),
            helpers: 0,
        }),
        cv: Condvar::new(),
    })
}

fn helper_loop(slot: usize) {
    // Opt-in affinity (`QR3D_PIN_CORES`): helpers occupy slots above the
    // caller's (slot 0 runs the submitting thread's own chunk). Best
    // effort — see `crate::affinity`.
    crate::affinity::maybe_pin(slot);
    let pool = pool();
    let mut guard = pool.state.lock().expect("pool lock");
    loop {
        if let Some((task, idx)) = guard.items.pop_front() {
            drop(guard);
            run_chunk(&task, idx);
            guard = pool.state.lock().expect("pool lock");
        } else {
            guard = pool.cv.wait(guard).expect("pool lock");
        }
    }
}

/// Execute one chunk, capture any panic, and publish completion.
fn run_chunk(task: &TaskShared, idx: usize) {
    // SAFETY: the submitting run_chunks call is blocked until this
    // task's `done` reaches `total`, keeping the pointee alive.
    let result = catch_unwind(AssertUnwindSafe(|| unsafe { (task.call)(task.f, idx) }));
    if let Err(payload) = result {
        task.panic
            .lock()
            .expect("panic slot lock")
            .get_or_insert(payload);
    }
    // Release pairs with the caller's Acquire load; the lock round-trip
    // makes the final notify race-free against the caller's wait.
    if task.done.fetch_add(1, Ordering::Release) + 1 == task.total {
        let _g = task.lock.lock().expect("task lock");
        task.cv.notify_all();
    }
}

/// Make sure at least `want` helper threads exist (capped at
/// [`MAX_FANOUT`]` - 1`). Spawn failure is non-fatal: the caller drains
/// its own chunks, so the job still completes serially.
fn ensure_helpers(want: usize) {
    let pool = pool();
    let want = want.min(MAX_FANOUT - 1);
    let mut st = pool.state.lock().expect("pool lock");
    while st.helpers < want {
        let idx = st.helpers;
        let name = format!("qr3d-par-{idx}");
        let spawned = std::thread::Builder::new()
            .name(name)
            .stack_size(8 << 20)
            .spawn(move || helper_loop(idx + 1));
        match spawned {
            Ok(_) => st.helpers += 1,
            Err(_) => break,
        }
    }
}

/// Run `f(0)`, `f(1)`, …, `f(n - 1)`, possibly concurrently on the
/// helper pool, returning when all chunks have finished. Chunk `0` runs
/// on the calling thread. A panic in any chunk is re-raised here after
/// the remaining chunks complete. With `n <= 1` this is a plain call.
///
/// Callers are responsible for making chunks write disjoint data; the
/// pool adds no ordering between chunks.
pub fn run_chunks<F: Fn(usize) + Sync>(n: usize, f: &F) {
    if n == 0 {
        return;
    }
    if n == 1 {
        f(0);
        return;
    }
    unsafe fn trampoline<F: Fn(usize)>(p: *const (), idx: usize) {
        (*(p as *const F))(idx)
    }
    ensure_helpers(n - 1);
    let task = Arc::new(TaskShared {
        f: f as *const F as *const (),
        call: trampoline::<F>,
        total: n,
        done: AtomicUsize::new(0),
        lock: Mutex::new(()),
        cv: Condvar::new(),
        panic: Mutex::new(None),
    });
    let pool = pool();
    {
        let mut st = pool.state.lock().expect("pool lock");
        for idx in 1..n {
            st.items.push_back((Arc::clone(&task), idx));
        }
    }
    pool.cv.notify_all();
    run_chunk(&task, 0);
    // Drain chunks of *this* job that no helper has claimed yet.
    loop {
        let mine = {
            let mut st = pool.state.lock().expect("pool lock");
            let pos = st.items.iter().position(|(t, _)| Arc::ptr_eq(t, &task));
            pos.and_then(|p| st.items.remove(p))
        };
        match mine {
            Some((t, idx)) => run_chunk(&t, idx),
            None => break,
        }
    }
    // Wait for stolen chunks. The condition is checked under the task
    // lock that run_chunk's final notify also takes, so the wakeup
    // cannot be lost.
    {
        let mut g = task.lock.lock().expect("task lock");
        while task.done.load(Ordering::Acquire) < n {
            g = task.cv.wait(g).expect("task lock");
        }
    }
    let payload = task.panic.lock().expect("panic slot lock").take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// How many rank threads a simulated machine is currently running;
/// the executor stores `p` here when it spawns ranks (latest spawn
/// wins — concurrent machines share the host conservatively).
static CONCURRENT_RANKS: AtomicUsize = AtomicUsize::new(1);

/// Declare that `p` rank threads will run concurrently, shrinking each
/// rank's worker fanout so `ranks × workers` stays within the host's
/// cores. Called by `qr3d_machine`'s executor; `p = 1` restores full
/// fanout.
pub fn set_concurrent_ranks(p: usize) {
    CONCURRENT_RANKS.store(p.max(1), Ordering::Relaxed);
}

fn available_cores() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

thread_local! {
    static FORCED_FANOUT: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Run `f` with this thread's parallel fanout pinned to `n` (clamped to
/// `1..=`[`MAX_FANOUT`]), ignoring `QR3D_RANK_THREADS` and the core
/// budget. Restores the previous value on exit, including on panic.
/// This is how tests and benches compare thread counts on any host.
pub fn with_forced_fanout<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCED_FANOUT.with(|c| c.set(self.0));
        }
    }
    let prev = FORCED_FANOUT.with(|c| c.replace(Some(n.clamp(1, MAX_FANOUT))));
    let _restore = Restore(prev);
    f()
}

/// The parallel width the block loops should use right now: a
/// [`with_forced_fanout`] override if present, else
/// `min(QR3D_RANK_THREADS, max(1, cores / concurrent ranks))`.
pub fn fanout() -> usize {
    if let Some(n) = FORCED_FANOUT.with(|c| c.get()) {
        return n;
    }
    let t = BlockParams::active().rank_threads;
    if t <= 1 {
        return 1;
    }
    let ranks = CONCURRENT_RANKS.load(Ordering::Relaxed).max(1);
    let budget = (available_cores() / ranks).max(1);
    t.min(budget).min(MAX_FANOUT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn every_chunk_runs_exactly_once() {
        for n in [1usize, 2, 3, 8, 16, 40] {
            let counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            run_chunks(n, &|i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, c) in counts.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "chunk {i} of {n}");
            }
        }
    }

    #[test]
    fn writes_from_all_chunks_are_visible() {
        let mut out = vec![0u64; 64];
        {
            let base = out.as_mut_ptr() as usize;
            run_chunks(8, &move |i| {
                // SAFETY: disjoint 8-element bands per chunk.
                let band =
                    unsafe { std::slice::from_raw_parts_mut((base as *mut u64).add(i * 8), 8) };
                for (j, v) in band.iter_mut().enumerate() {
                    *v = (i * 8 + j) as u64 + 1;
                }
            });
        }
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
    }

    #[test]
    fn chunk_panic_reaches_the_caller() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_chunks(4, &|i| {
                if i == 2 {
                    panic!("boom in chunk 2");
                }
            });
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "boom in chunk 2");
        // The pool must still be usable afterwards.
        run_chunks(4, &|_| {});
    }

    #[test]
    fn forced_fanout_overrides_and_restores() {
        let before = fanout();
        let inner = with_forced_fanout(4, || {
            let mid = with_forced_fanout(200, fanout);
            assert_eq!(mid, MAX_FANOUT, "forced fanout clamps to MAX_FANOUT");
            fanout()
        });
        assert_eq!(inner, 4);
        assert_eq!(fanout(), before, "override is scoped");
        let zero = with_forced_fanout(0, fanout);
        assert_eq!(zero, 1, "forced fanout clamps up to 1");
    }

    #[test]
    fn rank_budget_divides_cores() {
        // With a forced override the budget is ignored entirely.
        set_concurrent_ranks(usize::MAX);
        assert_eq!(with_forced_fanout(2, fanout), 2);
        set_concurrent_ranks(1);
    }
}
