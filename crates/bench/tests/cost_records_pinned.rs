//! Pins the deterministic `cost/*` records of `BENCH_baseline.json`
//! **bitwise** against fresh measurements.
//!
//! The blocked local kernels changed how the arithmetic *executes*, but
//! charged paper costs come from the `flops::*` formulas — algorithm
//! level, not instruction level — and the communication patterns are
//! untouched. So every pre-existing cost record (the 12 singles plus the
//! fused-batch records) must reproduce to the last bit; any drift means
//! a kernel rewrite leaked into the cost model.

use std::sync::Arc;

use qr3d_bench::report::BenchReport;
use qr3d_bench::{
    run_caqr1d, run_caqr3d, run_cholqr2, run_cholqr2_batch, run_cholqr2_batch_over, run_pivotqr,
    run_rrqr, run_tsqr, run_tsqr_ft, run_tsqr_over, run_updating,
};
use qr3d_core::prelude::Caqr3dConfig;
use qr3d_machine::{Clock, MpscTransport, RingTransport};

fn baseline() -> BenchReport {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_baseline.json");
    let text = std::fs::read_to_string(path).expect("committed baseline");
    BenchReport::from_json(&text).expect("baseline parses")
}

fn pinned(base: &BenchReport, name: &str) -> f64 {
    base.records
        .iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("{name} missing from BENCH_baseline.json"))
        .value
}

fn assert_clock_pinned(base: &BenchReport, name: &str, c: Clock) {
    // Bitwise: the simulator's logical clocks are deterministic, and the
    // kernel rewrite must not move a single charged flop, word, or
    // message.
    assert_eq!(
        c.flops,
        pinned(base, &format!("cost/{name}/flops")),
        "cost/{name}/flops drifted"
    );
    assert_eq!(
        c.words,
        pinned(base, &format!("cost/{name}/words")),
        "cost/{name}/words drifted"
    );
    assert_eq!(
        c.msgs,
        pinned(base, &format!("cost/{name}/msgs")),
        "cost/{name}/msgs drifted"
    );
}

#[test]
fn the_twelve_cost_records_are_bitwise_unchanged() {
    let base = baseline();
    assert_clock_pinned(&base, "tsqr_512x16x8", run_tsqr(512, 16, 8, 7));
    assert_clock_pinned(&base, "cholqr2_512x16x8", run_cholqr2(512, 16, 8, 7));
    assert_clock_pinned(&base, "caqr1d_256x16x4_b4", run_caqr1d(256, 16, 4, 4, 7));
    assert_clock_pinned(
        &base,
        "caqr3d_96x24x4",
        run_caqr3d(96, 24, 4, Caqr3dConfig::new(12, 6), 7),
    );
}

#[test]
fn the_rank_revealing_records_are_bitwise_pinned() {
    // The new subsystem's clocks join the gate with the same contract as
    // the pre-existing records: bit-for-bit reproducible, so any drift
    // in the tournament/sketch communication pattern fails here.
    let base = baseline();
    let pivot = run_pivotqr(256, 32, 4, 7);
    assert_clock_pinned(&base, "geqp3_256x32x4", pivot);
    let rrqr = run_rrqr(512, 16, 8, 7);
    assert_clock_pinned(&base, "rrqr_512x16x8", rrqr);
    // The latency-amortization ratio derives from the same pinned clocks.
    let pivot_same = run_pivotqr(512, 16, 8, 7);
    assert_eq!(
        pivot_same.msgs / rrqr.msgs,
        pinned(&base, "ratio/pivotqr_msgs_over_rrqr_msgs"),
        "sketch-vs-tournament message amortization drifted"
    );
}

#[test]
fn the_fused_batch_records_are_bitwise_unchanged() {
    let base = baseline();
    let k = 8usize;
    let batch = run_cholqr2_batch(512, 16, 8, k, 7);
    assert_clock_pinned(&base, "cholqr2_batch8_512x16x8", batch);
    // The amortization ratio is derived from the same two pinned clocks.
    let single = run_cholqr2(512, 16, 8, 7);
    assert_eq!(
        k as f64 * single.msgs / batch.msgs,
        pinned(&base, "ratio/cholqr2_seq8_msgs_over_batch8_msgs"),
        "fused-batch message amortization drifted"
    );
}

#[test]
fn the_fault_tolerant_tsqr_records_are_bitwise_pinned() {
    // The coded-TSQR prologue joins the gate with the same contract:
    // its fault-free clock is deterministic, so the encode tree or GO
    // barrier changing its communication pattern fails here bitwise.
    let base = baseline();
    let ft = run_tsqr_ft(512, 16, 8, 1, 7);
    assert_clock_pinned(&base, "tsqr_ft_512x16x8c1", ft);
    let tsqr = run_tsqr(512, 16, 8, 7);
    assert_eq!(
        ft.words / tsqr.words,
        pinned(&base, "ratio/tsqr_ft_overhead_words"),
        "coded-TSQR bandwidth overhead drifted"
    );
    assert!(
        ft.words > tsqr.words && ft.msgs > tsqr.msgs,
        "the encode prologue must cost something"
    );
}

#[test]
fn the_updating_qr_records_are_bitwise_pinned() {
    // The streaming subsystem's charged clocks join the gate with the
    // same contract as every other record: the carry-stack appends and
    // finish replay are deterministic, so any drift in their merge or
    // communication pattern fails here bitwise.
    let base = baseline();
    assert_clock_pinned(&base, "update_512x16x8k4", run_updating(512, 16, 8, 4, 7));
}

#[test]
fn the_transport_message_ratios_are_exactly_one() {
    // The transport-fabric acceptance relation: the full clock — not
    // just messages — must be bitwise identical whichever substrate
    // moves the envelopes, because every charge happens above the
    // `Transport` boundary. The baseline stores the message ratios;
    // this test pins the whole clocks and then the ratios themselves.
    let base = baseline();
    let tsqr_ring = run_tsqr_over(Arc::new(RingTransport::default()), 512, 16, 8, 7);
    let tsqr_mpsc = run_tsqr_over(Arc::new(MpscTransport), 512, 16, 8, 7);
    assert_eq!(
        tsqr_ring, tsqr_mpsc,
        "tsqr clock diverged across transports"
    );
    assert_eq!(
        tsqr_ring.msgs / tsqr_mpsc.msgs,
        pinned(&base, "ratio/tsqr_msgs_ring_over_mpsc"),
        "tsqr ring/mpsc message ratio drifted"
    );
    let batch_ring = run_cholqr2_batch_over(Arc::new(RingTransport::default()), 512, 16, 8, 8, 7);
    let batch_mpsc = run_cholqr2_batch_over(Arc::new(MpscTransport), 512, 16, 8, 8, 7);
    assert_eq!(
        batch_ring, batch_mpsc,
        "fused-batch clock diverged across transports"
    );
    assert_eq!(
        batch_ring.msgs / batch_mpsc.msgs,
        pinned(&base, "ratio/cholqr2_batch8_msgs_ring_over_mpsc"),
        "fused-batch ring/mpsc message ratio drifted"
    );
}

#[test]
fn the_tsqr_words_ratio_is_bitwise_pinned() {
    // This ratio was gated in the baseline but never pinned here —
    // completeness pass for the SIMD/threading PR: derived from the same
    // deterministic clocks, so it must also reproduce exactly.
    let base = baseline();
    let tsqr = run_tsqr(512, 16, 8, 7);
    let cholqr2 = run_cholqr2(512, 16, 8, 7);
    assert_eq!(
        tsqr.words / cholqr2.words,
        pinned(&base, "ratio/tsqr_words_over_cholqr2_words"),
        "tsqr/cholqr2 bandwidth ratio drifted"
    );
}

#[test]
fn baseline_cost_and_ratio_records_are_exactly_the_pinned_set() {
    // Every deterministic record in the committed baseline must be
    // asserted bitwise by some test in this file: a `cost/*` or
    // `ratio/*` record that exists only in the JSON is a hole in the
    // gate (wall-clock `speedup/*` records are machine-dependent and
    // gated by `bench_gate check` instead).
    let base = baseline();
    let mut deterministic: Vec<&str> = base
        .records
        .iter()
        .map(|r| r.name.as_str())
        .filter(|n| n.starts_with("cost/") || n.starts_with("ratio/"))
        .collect();
    deterministic.sort_unstable();
    let clock_groups = [
        "tsqr_512x16x8",
        "cholqr2_512x16x8",
        "caqr1d_256x16x4_b4",
        "caqr3d_96x24x4",
        "geqp3_256x32x4",
        "rrqr_512x16x8",
        "cholqr2_batch8_512x16x8",
        "tsqr_ft_512x16x8c1",
        "update_512x16x8k4",
    ];
    let mut expected: Vec<String> = clock_groups
        .iter()
        .flat_map(|g| {
            ["flops", "words", "msgs"]
                .iter()
                .map(move |axis| format!("cost/{g}/{axis}"))
        })
        .collect();
    expected.push("ratio/pivotqr_msgs_over_rrqr_msgs".into());
    expected.push("ratio/tsqr_words_over_cholqr2_words".into());
    expected.push("ratio/cholqr2_seq8_msgs_over_batch8_msgs".into());
    expected.push("ratio/tsqr_msgs_ring_over_mpsc".into());
    expected.push("ratio/cholqr2_batch8_msgs_ring_over_mpsc".into());
    expected.push("ratio/tsqr_ft_overhead_words".into());
    expected.sort_unstable();
    assert_eq!(
        deterministic, expected,
        "baseline cost/ratio records diverged from the pinned set"
    );
    // And the wall-clock complement: the gated speedup records,
    // including the SIMD-dispatch and within-rank-threading ones.
    for name in [
        "speedup/warm_executor_over_cold_512x16x8",
        "speedup/gemm_blocked_over_reference_192",
        "speedup/geqrt_blocked_over_reference_256x64",
        "speedup/geqrt_blocked_over_reference_1024x256",
        "speedup/gemm_simd_over_scalar_512",
        "speedup/geqrt_threads4_over_threads1_1024x256",
        "speedup/service_pool_coalesced_over_spawn_k16",
        "speedup/streaming_append_over_refactor",
    ] {
        assert!(
            base.records.iter().any(|r| r.name == name),
            "{name} missing from BENCH_baseline.json"
        );
    }
}
