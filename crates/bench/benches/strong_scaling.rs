//! Experiment E9 — the paper's motivation: "we can tune this algorithm
//! for machines with different communication costs."
//!
//! Fixed problem, P sweep; for each algorithm the measured critical-path
//! (F, W, S) is converted to modeled runtime `γF + βW + αS` under two
//! machine presets. The winner flips with the machine: on the
//! latency-dominated cluster the low-S settings (small ε/δ) win; on the
//! bandwidth-precious supercomputer the low-W settings (large ε/δ) win.

use qr3d_bench::report::header;
use qr3d_bench::{run_caqr1d, run_caqr3d, run_house1d, run_tsqr};
use qr3d_core::params::caqr1d_block;
use qr3d_core::prelude::*;
use qr3d_machine::{Clock, CostParams};

fn time(c: &Clock, p: &CostParams) -> f64 {
    p.time(c.flops, c.words, c.msgs)
}

fn main() {
    header("Strong scaling, tall-skinny (n = 24, m = 24·P)");
    let n = 24usize;
    println!(
        "{:<22} {:>4} {:>12} {:>12} | {:>13} {:>13}",
        "algorithm", "P", "W", "S", "t(cluster)", "t(supercomp.)"
    );
    for p in [4usize, 8, 16] {
        let m = n * p;
        let algos: Vec<(String, Clock)> = vec![
            ("1d-house".into(), run_house1d(m, n, p, 1, 31)),
            ("tsqr".into(), run_tsqr(m, n, p, 31)),
            (
                "1d-caqr-eg (ε=1)".into(),
                run_caqr1d(m, n, p, caqr1d_block(n, p, 1.0), 31),
            ),
        ];
        let cluster = CostParams::cluster();
        let superc = CostParams::supercomputer();
        let mut best_cluster = (f64::INFINITY, String::new());
        let mut best_super = (f64::INFINITY, String::new());
        for (name, c) in &algos {
            let tc = time(c, &cluster);
            let ts = time(c, &superc);
            if tc < best_cluster.0 {
                best_cluster = (tc, name.clone());
            }
            if ts < best_super.0 {
                best_super = (ts, name.clone());
            }
            println!(
                "{:<22} {:>4} {:>12.0} {:>12.0} | {:>13.6} {:>13.6}",
                name, p, c.words, c.msgs, tc, ts
            );
        }
        println!(
            "    P={p}: cluster winner = {}, supercomputer winner = {}",
            best_cluster.1, best_super.1
        );
        // 1d-house must never win on either machine at meaningful P.
        if p >= 8 {
            assert_ne!(best_cluster.1, "1d-house");
            assert_ne!(best_super.1, "1d-house");
        }
    }

    header("Strong scaling, square-ish (m = 4n, n = 48): δ tuned to the machine");
    let n = 48usize;
    let m = 4 * n;
    println!(
        "{:<22} {:>4} {:>12} {:>12} | {:>13} {:>13}",
        "algorithm", "P", "W", "S", "t(cluster)", "t(supercomp.)"
    );
    for p in [8usize, 16] {
        let lo = run_caqr3d(m, n, p, Caqr3dConfig::auto(m, n, p, 0.5), 32);
        let hi = run_caqr3d(m, n, p, Caqr3dConfig::auto(m, n, p, 2.0 / 3.0), 32);
        for (name, c) in [("3d-caqr-eg (δ=1/2)", &lo), ("3d-caqr-eg (δ=2/3)", &hi)] {
            println!(
                "{:<22} {:>4} {:>12.0} {:>12.0} | {:>13.6} {:>13.6}",
                name,
                p,
                c.words,
                c.msgs,
                time(c, &CostParams::cluster()),
                time(c, &CostParams::supercomputer()),
            );
        }
        println!(
            "    P={p}: δ=1/2 is the latency end (S {:.0} vs {:.0}); δ=2/3's bandwidth \
             advantage needs the Eq. (2) regime (see table2's extrapolation)",
            lo.msgs, hi.msgs
        );
        assert!(
            lo.msgs <= hi.msgs,
            "P={p}: smaller δ must not need more messages"
        );
    }
    println!("\n[strong scaling done]");
}
