//! Criterion wall-time benchmarks of the local kernels and small
//! end-to-end simulated factorizations. These complement the cost-model
//! benches: the paper's claims are about communication counts, but the
//! library should also be *fast enough* to use, and these catch
//! performance regressions in the kernels.
//!
//! The headline comparison is `gemm/blocked_512` vs `gemm/reference_512`:
//! the cache-blocked, register-tiled kernel must beat the seed's scalar
//! triple loop by ≥ 3× on a 512×512×512 product.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qr3d_bench::{run_caqr1d, run_caqr3d, run_tsqr};
use qr3d_core::prelude::*;
use qr3d_matrix::gemm::{gemm, gemm_reference, matmul, Trans};
use qr3d_matrix::qr::geqrt;
use qr3d_matrix::simd::{self, SimdLevel};
use qr3d_matrix::tri::lu_sign;
use qr3d_matrix::Matrix;

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    for n in [32usize, 64, 128] {
        let a = Matrix::random(n, n, 1);
        let b = Matrix::random(n, n, 2);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| matmul(&a, &b));
        });
    }
    g.finish();
}

fn bench_gemm_512_blocked_vs_reference(c: &mut Criterion) {
    // The tentpole acceptance comparison: blocked ≥ 3× over the seed
    // scalar kernel at 512³.
    let n = 512usize;
    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);
    let mut g = c.benchmark_group("gemm");
    g.sample_size(10);
    g.bench_function("blocked_512", |bench| {
        let mut cm = Matrix::zeros(n, n);
        bench.iter(|| gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut cm));
    });
    g.bench_function("reference_512", |bench| {
        let mut cm = Matrix::zeros(n, n);
        bench.iter(|| gemm_reference(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut cm));
    });
    g.finish();
}

fn bench_gemm_simd_levels(c: &mut Criterion) {
    // Achieved GFLOP/s per dispatch level at 512³ (2n³ flops per
    // multiply). Forcing never exceeds hardware support, so on a
    // scalar-only host every row measures the same fallback.
    let n = 512usize;
    let flops = 2.0 * (n as f64).powi(3);
    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);
    let mut g = c.benchmark_group("gemm_simd");
    g.sample_size(10);
    for level in [SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512] {
        if level > simd::detected_level() {
            continue;
        }
        g.bench_function(&format!("{level}_512"), |bench| {
            simd::force_level(Some(level));
            let mut cm = Matrix::zeros(n, n);
            let mut last = std::time::Duration::ZERO;
            bench.iter(|| {
                let t0 = std::time::Instant::now();
                gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut cm);
                last = t0.elapsed();
            });
            simd::force_level(None);
            if last > std::time::Duration::ZERO {
                eprintln!(
                    "gemm_simd/{level}_512: {:.2} GFLOP/s",
                    flops / last.as_secs_f64() / 1e9
                );
            }
        });
    }
    g.finish();
}

fn bench_geqrt(c: &mut Criterion) {
    let mut g = c.benchmark_group("geqrt");
    for (m, n) in [(256usize, 16usize), (512, 32)] {
        let a = Matrix::random(m, n, 3);
        g.bench_with_input(
            BenchmarkId::new("panel", format!("{m}x{n}")),
            &a,
            |bench, a| {
                bench.iter(|| geqrt(a));
            },
        );
    }
    g.finish();
}

fn bench_lu_sign(c: &mut Criterion) {
    let mut g = c.benchmark_group("lu_sign");
    for n in [16usize, 64] {
        let x = Matrix::random(n, n, 4);
        g.bench_with_input(BenchmarkId::from_parameter(n), &x, |bench, x| {
            bench.iter(|| lu_sign(x));
        });
    }
    g.finish();
}

fn bench_simulated_qr(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulated_qr");
    g.sample_size(10);
    g.bench_function("tsqr_256x16_p4", |b| {
        b.iter(|| run_tsqr(256, 16, 4, 5));
    });
    g.bench_function("caqr1d_256x16_p4", |b| {
        b.iter(|| run_caqr1d(256, 16, 4, 8, 6));
    });
    g.bench_function("caqr3d_128x32_p4", |b| {
        b.iter(|| run_caqr3d(128, 32, 4, Caqr3dConfig::auto(128, 32, 4, 0.5), 7));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_gemm_512_blocked_vs_reference,
    bench_gemm_simd_levels,
    bench_geqrt,
    bench_lu_sign,
    bench_simulated_qr
);
criterion_main!(benches);
