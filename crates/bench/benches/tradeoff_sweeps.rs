//! Experiments E4 & E5 — the bandwidth/latency tradeoff "figures" of
//! Theorems 1 and 2.
//!
//! The paper's headline: "by varying a parameter to navigate the
//! bandwidth/latency tradeoff, we can tune this algorithm for machines
//! with different communication costs." We sweep ε (1D) and δ (3D) and
//! print the measured (W, S) pairs — W must fall and S must rise
//! monotonically along each sweep, tracing the tradeoff curve.

use qr3d_bench::report::header;
use qr3d_bench::{run_caqr1d, run_caqr3d};
use qr3d_core::params::{caqr1d_block, caqr3d_blocks};
use qr3d_core::prelude::*;

fn main() {
    header("Theorem 2 tradeoff — 1D-CAQR-EG, ε sweep (m = 16n, n = 32, P = 16)");
    let (n, p) = (32usize, 16usize);
    let m = n * p;
    println!(
        "{:>6} {:>6} {:>12} {:>10} {:>14}",
        "ε", "b", "W", "S", "W·S / n²"
    );
    let mut prev_w = f64::INFINITY;
    let mut prev_s = 0.0;
    for eps in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let b = caqr1d_block(n, p, eps);
        let c = run_caqr1d(m, n, p, b, 11);
        println!(
            "{:>6.2} {:>6} {:>12.0} {:>10.0} {:>14.2}",
            eps,
            b,
            c.words,
            c.msgs,
            c.words * c.msgs / (n * n) as f64
        );
        assert!(
            c.words <= prev_w * 1.05,
            "ε={eps}: W must not grow along the sweep"
        );
        assert!(
            c.msgs >= prev_s * 0.95,
            "ε={eps}: S must not shrink along the sweep"
        );
        prev_w = c.words;
        prev_s = c.msgs;
    }
    println!("(paper: W ∝ (log P)^(1−ε) falls, S ∝ (log P)^(1+ε) rises; ε = 0 is tsqr)");

    header("Theorem 1 tradeoff — 3D-CAQR-EG, (b, b*) navigation (m = 4n, n = 128, P = 8)");
    // At simulator scales the δ parameter moves b along a coarse grid (the
    // qr-eg recursion only reacts to b at power-of-two boundaries), so we
    // trace the tradeoff curve directly through the block sizes Eq. (12)
    // would produce for growing δ, holding the recursion depth comparable.
    let (n, p) = (128usize, 8usize);
    let m = 4 * n;
    println!(
        "{:>12} {:>6} {:>6} {:>12} {:>10} {:>16}",
        "point", "b", "b*", "W", "S", "W·S/(n² log²P)"
    );
    let lg2 = (p as f64).log2().powi(2);
    let mut curve = Vec::new();
    for (label, b, bstar) in [
        ("δ→1/2", 64usize, 32usize),
        ("mid", 64, 16),
        ("δ→2/3", 64, 8),
        ("deeper", 32, 8),
    ] {
        let c = run_caqr3d(m, n, p, Caqr3dConfig::new(b, bstar), 12);
        println!(
            "{:>12} {:>6} {:>6} {:>12.0} {:>10.0} {:>16.2}",
            label,
            b,
            bstar,
            c.words,
            c.msgs,
            c.words * c.msgs / ((n * n) as f64 * lg2)
        );
        curve.push((c.words, c.msgs));
    }
    // The navigable tradeoff: shrinking b* must raise S; the paper's
    // Eq. (13) latency term (n/b*)·log P dominates S.
    for k in 1..3 {
        assert!(
            curve[k].1 >= curve[k - 1].1,
            "S must rise as b* shrinks (step {k})"
        );
    }
    // And the first point (largest b*) must be the bandwidth-expensive /
    // latency-cheap end relative to the last shallow point.
    assert!(
        curve[2].1 > curve[0].1,
        "the sweep must trace a genuine latency range"
    );
    println!(
        "(paper: W ∝ (nP/m)^(−δ) falls, S ∝ (nP/m)^δ rises; the conjectured invariant \
         is the W·S product staying Ω(n²). The paper's δ endpoints map to the two ends \
         of this (b, b*) curve; Eq. (13)'s terms are validated term-by-term in \
         validate_recurrences.)"
    );
    // Also verify the paper's δ endpoints through the auto parameter map.
    let lo = caqr3d_blocks(m, n, p, 0.5, 1.0);
    let hi = caqr3d_blocks(m, n, p, 2.0 / 3.0, 1.0);
    println!("Eq. (12) parameter map: δ=1/2 → (b,b*)={lo:?}, δ=2/3 → (b,b*)={hi:?}");
    assert!(hi.0 <= lo.0, "larger δ must not enlarge b");

    println!("\n[tradeoff sweeps done]");
}
