//! Experiment E1 — reproduce **Table 1**: asymptotic costs of the eight
//! collectives.
//!
//! For each collective we measure critical-path (F, W, S) on the simulated
//! machine across a processor sweep and a block-size sweep, print the
//! measured-to-formula ratio (which should stay roughly constant), and fit
//! empirical scaling exponents.

use qr3d_bench::report::{cost_cell, exponent_fit, header, ratio};
use qr3d_collectives::prelude::*;
use qr3d_cost::collectives as formula;
use qr3d_machine::{Clock, Comm, CostParams, Machine, Rank};

fn measure(p: usize, f: impl Fn(&mut Rank, &Comm) + Sync) -> Clock {
    let machine = Machine::new(p, CostParams::unit());
    let out = machine.run(|rank| {
        let w = rank.world();
        f(rank, &w);
    });
    out.stats.critical()
}

fn run_collective(name: &str, p: usize, b: usize) -> Clock {
    match name {
        "scatter" => measure(p, |rank, w| {
            let sizes = vec![b; p];
            let blocks = (w.rank() == 0).then(|| vec![vec![1.0; b]; p]);
            let _ = scatter(rank, w, 0, blocks, &sizes);
        }),
        "gather" => measure(p, |rank, w| {
            let sizes = vec![b; p];
            let _ = gather(rank, w, 0, &vec![1.0; b], &sizes);
        }),
        "broadcast" => measure(p, |rank, w| {
            let data = (w.rank() == 0).then(|| vec![1.0; b]);
            let _ = broadcast(rank, w, 0, data, b);
        }),
        "reduce" => measure(p, |rank, w| {
            let _ = reduce(rank, w, 0, vec![1.0; b]);
        }),
        "all-gather" => measure(p, |rank, w| {
            let sizes = vec![b; p];
            let _ = all_gather(rank, w, vec![1.0; b], &sizes);
        }),
        "all-reduce" => measure(p, |rank, w| {
            let _ = all_reduce(rank, w, vec![1.0; b]);
        }),
        "reduce-scatter" => measure(p, |rank, w| {
            let sizes = vec![b; p];
            let blocks = vec![vec![1.0; b]; p];
            let _ = reduce_scatter(rank, w, blocks, &sizes);
        }),
        "all-to-all" => measure(p, |rank, w| {
            let sizes = BlockSizes::uniform(p, b);
            let me = w.rank();
            let blocks: Vec<Vec<f64>> = (0..p).map(|d| vec![(me + d) as f64; b]).collect();
            let _ = all_to_all(rank, w, blocks, &sizes);
        }),
        _ => unreachable!(),
    }
}

fn predicted(name: &str, p: usize, b: usize) -> qr3d_cost::Cost3 {
    match name {
        "scatter" => formula::scatter(p, b),
        "gather" => formula::gather(p, b),
        "broadcast" => formula::broadcast(p, b),
        "reduce" => formula::reduce(p, b),
        "all-gather" => formula::all_gather(p, b),
        "all-reduce" => formula::all_reduce(p, b),
        "reduce-scatter" => formula::reduce_scatter(p, b),
        "all-to-all" => formula::all_to_all(p, b, b * p),
        _ => unreachable!(),
    }
}

fn main() {
    let names = [
        "scatter",
        "gather",
        "broadcast",
        "reduce",
        "all-gather",
        "all-reduce",
        "all-to-all",
        "reduce-scatter",
    ];

    header("Table 1 — collective costs, P sweep (B = 64)");
    println!(
        "{:<16} {:>4} {:>42}   {:>8} {:>8} {:>8}",
        "collective", "P", "measured (critical path)", "W/Ŵ", "S/Ŝ", ""
    );
    let b = 64;
    for name in names {
        let mut s_series = Vec::new();
        let ps = [4usize, 8, 16, 32];
        for &p in &ps {
            let c = run_collective(name, p, b);
            let f = predicted(name, p, b);
            s_series.push(c.msgs);
            println!(
                "{:<16} {:>4} {:>42}   {:>8.2} {:>8.2}",
                name,
                p,
                cost_cell(&c),
                ratio(c.words.max(1.0), f.words.max(1.0)),
                ratio(c.msgs, f.msgs),
            );
        }
        let xs: Vec<f64> = ps.iter().map(|&p| (p as f64).log2()).collect();
        let slope = exponent_fit(&xs, &s_series);
        println!("{name:<16}      S grows ∝ (log P)^{slope:.2}  (Table 1 predicts exponent 1.00)");
    }

    header("Table 1 — broadcast/reduce regime switch, B sweep (P = 16)");
    println!(
        "{:<16} {:>6} {:>12} {:>14}",
        "collective", "B", "measured W", "min-bound ratio"
    );
    for name in ["broadcast", "reduce", "all-reduce"] {
        for b in [4usize, 64, 1024, 8192] {
            let c = run_collective(name, 16, b);
            let f = predicted(name, 16, b);
            println!(
                "{:<16} {:>6} {:>12.0} {:>14.2}",
                name,
                b,
                c.words,
                ratio(c.words, f.words),
            );
        }
    }

    header("Table 1 — all-to-all: two-phase handles skewed block sizes");
    for p in [8usize, 16] {
        let hot = 512;
        let sizes = BlockSizes::from_fn(p, |s, _| if s == 0 { hot } else { 1 });
        let bstar = sizes.max_load();
        let machine = Machine::new(p, CostParams::unit());
        let sz = sizes.clone();
        let out = machine.run(|rank| {
            let w = rank.world();
            let me = w.rank();
            let blocks: Vec<Vec<f64>> = (0..p).map(|d| vec![d as f64; sz.get(me, d)]).collect();
            let _ = all_to_all(rank, &w, blocks, &sz);
        });
        let c = out.stats.critical();
        let f = formula::all_to_all(p, hot, bstar);
        println!(
            "P={p:<3} skew B={hot}, B*={bstar}: measured W={:.0} vs (B*+P²)logP bound ratio {:.2}",
            c.words,
            ratio(c.words, f.words),
        );
    }

    println!("\n[table1 done]");
}
