//! Experiment — **the QR service layer**: warm-executor throughput and
//! fused-batch latency amortization.
//!
//! ```text
//! serving mode           thread spawns   critical-path messages (k problems)
//! cold  (Machine::run)   k·P             k·S_single
//! warm  (Session)        P, once         k·S_single
//! fused (factor_batch)   P, once         ≈ S_single
//! ```
//!
//! Claims checked on real executions:
//! * a warm executor serves the same job stream faster than cold
//!   per-call spawning (wall-clock),
//! * the fused CholeskyQR2 batch spends ≥ 4× fewer critical-path
//!   messages than k sequential calls (k ≥ 8), with `S_batch ≈ S_single`,
//! * the batch advisor picks the fused Gram path for well-conditioned
//!   tall-skinny batches on a latency-dominated cluster.

use qr3d_bench::report::header;
use qr3d_bench::{executor_warm_vs_cold_secs, run_cholqr2, run_cholqr2_batch};
use qr3d_core::prelude::*;
use qr3d_machine::CostParams;
use qr3d_matrix::Matrix;

fn main() {
    let (m, n, p) = (512usize, 16usize, 8usize);

    header("warm executor vs cold spawning (512×16 TSQR jobs, P = 8)");
    println!(
        "{:>6} {:>12} {:>12} {:>10}",
        "jobs", "cold (s)", "warm (s)", "speedup"
    );
    let mut best = 0.0f64;
    for jobs in [8usize, 24, 48] {
        let (cold, warm) = executor_warm_vs_cold_secs(m, n, p, jobs);
        let speedup = cold / warm;
        best = best.max(speedup);
        println!("{jobs:>6} {cold:>12.4} {warm:>12.4} {speedup:>9.2}×");
    }
    assert!(
        best > 1.0,
        "a warm executor must beat cold per-call spawning somewhere \
         (best observed speedup {best:.2}×)"
    );

    header("fused batch vs sequential calls (CholeskyQR2, 512×16, P = 8)");
    let single = run_cholqr2(m, n, p, 7);
    println!(
        "{:>4} {:>14} {:>14} {:>10}",
        "k", "seq msgs", "fused msgs", "amortized"
    );
    for k in [2usize, 4, 8, 16] {
        let batch = run_cholqr2_batch(m, n, p, k, 7);
        let seq_msgs = k as f64 * single.msgs;
        println!(
            "{k:>4} {seq_msgs:>14.0} {:>14.0} {:>9.1}×",
            batch.msgs,
            seq_msgs / batch.msgs
        );
        // S_batch ≈ S_single: fusion must not grow the message count
        // with k (allow the auto all-reduce a variant switch).
        assert!(
            batch.msgs <= 2.0 * single.msgs,
            "k={k}: fused S={} vs single S={}",
            batch.msgs,
            single.msgs
        );
        if k >= 8 {
            assert!(
                batch.msgs * 4.0 <= seq_msgs,
                "k={k}: fused batch must be ≥ 4× leaner in messages \
                 (fused {} vs sequential {seq_msgs})",
                batch.msgs
            );
        }
    }

    header("batch advisor (cluster, κ = 100 asserted)");
    let params = FactorParams::new(CostParams::cluster()).with_kappa(100.0);
    for k in [1usize, 8] {
        let plan = QrBackend::auto_batch(m, n, p, k, &params);
        println!("k = {k:>2}  →  {:?} (fused = {})", plan.backend, plan.fused);
        if k >= 8 {
            assert!(
                matches!(plan.backend, QrBackend::CholQr2) && plan.fused,
                "k={k}: expected fused CholeskyQR2, got {plan:?}"
            );
        }
    }

    // End to end through the public service API: a warm session serving
    // an auto-dispatched batch, every answer verified.
    let mut session = Session::new(p, params);
    let problems: Vec<Matrix> = (0..8u64).map(|s| Matrix::random(m, n, s)).collect();
    let batch = session.factor_batch_auto(&problems);
    assert!(batch.fused, "the service must fuse this batch");
    for (a, out) in problems.iter().zip(&batch.outputs) {
        let out = out.as_ref().expect("well-conditioned");
        assert!(out.residual(a) < 1e-9, "service residual");
        assert!(out.orthogonality() < 1e-9, "service orthogonality");
    }

    println!("\nall QR-service claims verified");
}
