//! Experiment — **the multi-tenant service layer**: sustained
//! throughput and tail latency of [`qr3d_core::service::QrService`]
//! under concurrent closed-loop clients, against the naive baseline
//! (spawn-per-request `factor`: a fresh machine and `P` threads per
//! call).
//!
//! ```text
//! serving mode              per request                under load (k clients)
//! spawn-per-request         P thread spawns + joins    k·P live threads fighting
//! warm pool, uncoalesced    queue hop                  pool-bounded concurrency
//! warm pool, coalesced      queue hop                  same-shape requests fuse
//! ```
//!
//! Claims checked on real executions (every served result is
//! residual-verified by the runners):
//! * the warm coalesced pool sustains higher request throughput than
//!   spawn-per-request at every concurrency, decisively at k = 16,
//! * coalescing never loses to the uncoalesced pool at k = 16 — the
//!   fused buckets amortize reduction trees exactly when load peaks.

use qr3d_bench::report::header;
use qr3d_bench::{service_closed_loop, spawn_per_request_closed_loop, ServiceLoad};

fn row(mode: &str, load: &ServiceLoad) {
    println!(
        "{mode:>24} {:>10.1} {:>10.2} {:>10.2}",
        load.reqs_per_sec(),
        load.latency_quantile(0.5) * 1e3,
        load.latency_quantile(0.99) * 1e3,
    );
}

fn main() {
    let (m, n, p) = (512usize, 16usize, 8usize);
    let jobs_each = 4usize;

    let mut speedup_k16 = 0.0f64;
    let mut coalesced_vs_un_k16 = 0.0f64;
    for clients in [1usize, 4, 16] {
        header(&format!(
            "closed-loop clients = {clients} ({m}×{n} TSQR, P = {p}, {jobs_each} reqs/client)"
        ));
        println!(
            "{:>24} {:>10} {:>10} {:>10}",
            "mode", "req/s", "p50 (ms)", "p99 (ms)"
        );
        let naive = spawn_per_request_closed_loop(m, n, p, clients, jobs_each);
        let warm = service_closed_loop(m, n, p, clients, jobs_each, false);
        let fused = service_closed_loop(m, n, p, clients, jobs_each, true);
        row("spawn-per-request", &naive);
        row("warm pool, uncoalesced", &warm);
        row("warm pool, coalesced", &fused);
        if clients == 16 {
            speedup_k16 = fused.reqs_per_sec() / naive.reqs_per_sec();
            coalesced_vs_un_k16 = fused.reqs_per_sec() / warm.reqs_per_sec();
        }
    }

    println!();
    println!(
        "k = 16: coalesced pool vs spawn-per-request {speedup_k16:.2}×, \
         vs uncoalesced pool {coalesced_vs_un_k16:.2}×"
    );
    assert!(
        speedup_k16 > 1.0,
        "the warm coalesced pool must beat spawn-per-request at k = 16 \
         (measured {speedup_k16:.2}×)"
    );
    assert!(
        coalesced_vs_un_k16 > 0.8,
        "coalescing must not collapse next to the uncoalesced pool at \
         k = 16 (measured {coalesced_vs_un_k16:.2}×)"
    );
}
