//! Experiment E2 — reproduce **Table 2**: square-ish comparison
//! (`m/n = O(P)`).
//!
//! ```text
//! algorithm    #operations   #words               #messages
//! 2d-house     mn²/P         n²/(nP/m)^{1/2}      n log P
//! caqr (2D)    mn²/P         n²/(nP/m)^{1/2}      (nP/m)^{1/2}(log P)²
//! 3d-caqr-eg   mn²/P         n²/(nP/m)^δ          (nP/m)^δ(log P)²
//! ```
//!
//! Shape claims: caqr beats 2d-house on latency (tsqr panels); 3d-caqr-eg
//! with δ = 2/3 beats both 2D algorithms on bandwidth by Θ((nP/m)^{1/6}).

use qr3d_bench::report::{cost_cell, header, ratio};
use qr3d_bench::{run_caqr2d, run_caqr3d, run_house2d};
use qr3d_core::caqr2d::caqr2d_block;
use qr3d_core::house2d::Grid2Config;
use qr3d_core::prelude::*;
use qr3d_cost::prelude::*;

fn main() {
    header("Table 2 — square-ish comparison (m = 4n, P = 16)");
    let p = 16;
    println!(
        "{:<24} {:>4} {:>44}  {:>7} {:>7}",
        "algorithm", "n", "measured (critical path)", "W/Ŵ", "S/Ŝ"
    );
    for n in [32usize, 64] {
        let m = 4 * n;
        let house_grid = Grid2Config::auto(m, n, p, 2);
        let caqr_grid = Grid2Config::auto(m, n, p, caqr2d_block(m, n, p));
        let rows: Vec<(String, qr3d_machine::Clock, Cost3)> = vec![
            (
                format!("2d-house ({}x{} b=2)", house_grid.pr, house_grid.pc),
                run_house2d(m, n, p, house_grid, 3),
                house2d_cost(m, n, p),
            ),
            (
                format!(
                    "caqr-2d  ({}x{} b={})",
                    caqr_grid.pr, caqr_grid.pc, caqr_grid.b
                ),
                run_caqr2d(m, n, p, caqr_grid, 3),
                caqr2d_cost(m, n, p),
            ),
            (
                "3d-caqr-eg (δ=1/2)".into(),
                run_caqr3d(m, n, p, Caqr3dConfig::auto(m, n, p, 0.5), 3),
                theorem1_cost(m, n, p, 0.5),
            ),
            (
                "3d-caqr-eg (δ=2/3)".into(),
                run_caqr3d(m, n, p, Caqr3dConfig::auto(m, n, p, 2.0 / 3.0), 3),
                theorem1_cost(m, n, p, 2.0 / 3.0),
            ),
        ];
        for (name, c, f) in &rows {
            println!(
                "{:<24} {:>4} {:>44}  {:>7.2} {:>7.2}",
                name,
                n,
                cost_cell(c),
                ratio(c.words, f.words),
                ratio(c.msgs, f.msgs),
            );
        }
        let (house, caqr2, d3) = (&rows[0].1, &rows[1].1, &rows[3].1);
        assert!(
            caqr2.msgs < house.msgs,
            "n={n}: caqr-2d must beat 2d-house on latency (tsqr panels)"
        );
        println!(
            "    n={n}: measured W ratio 3d(δ=2/3)/caqr-2d = {:.2}  \
             (asymptotically Θ((nP/m)^(-1/6)) = {:.2}; see extrapolation below)",
            d3.words / caqr2.words,
            (n as f64 * p as f64 / m as f64).powf(-1.0 / 6.0),
        );
        println!(
            "    n={n}: W(3d,δ=2/3) / Ω(n²/(nP/m)^(2/3)) = {:.2}",
            d3.words / lower_bounds_square(m, n, p).words,
        );
    }

    header("Table 2 — asymptotic regime (Eq. (2) satisfied): model extrapolation");
    // At simulator scale the Eq. (2) constraint P(log P)² =
    // O(m^{δ/(1+δ)} n^{(1−δ)/(1+δ)}) is violated, so 3D-CAQR-EG's
    // all-to-all overheads dominate its bandwidth (exactly the limitation
    // §8.4 discusses). The Eq. (11)/(13) formulas are validated
    // term-by-term against measurement in `validate_recurrences`; here we
    // evaluate the same formulas at the paper's intended scale to read off
    // the asymptotic Table 2 ordering.
    let (n, p) = (1usize << 16, 1usize << 10);
    let m = 4 * n;
    println!("(m = 4n, n = 2^16, P = 2^10)");
    println!("{:<24} {:>14} {:>14}", "algorithm", "Ŵ", "Ŝ");
    let rows = [
        ("2d-house".to_string(), house2d_cost(m, n, p)),
        ("caqr-2d".to_string(), caqr2d_cost(m, n, p)),
        (
            "3d-caqr-eg (δ=1/2)".to_string(),
            theorem1_cost(m, n, p, 0.5),
        ),
        (
            "3d-caqr-eg (δ=2/3)".to_string(),
            theorem1_cost(m, n, p, 2.0 / 3.0),
        ),
    ];
    for (name, c) in &rows {
        println!("{:<24} {:>14.3e} {:>14.3e}", name, c.words, c.msgs);
    }
    let w3 = rows[3].1.words;
    let w2 = rows[1].1.words;
    assert!(
        w3 < w2,
        "in the Eq. (2) regime, 3D (δ=2/3) must beat 2D bandwidth: {w3} vs {w2}"
    );
    println!(
        "ratio 3d(δ=2/3)/caqr-2d = {:.3} = Θ((nP/m)^(-1/6)) = {:.3} — the paper's claim",
        w3 / w2,
        (n as f64 * p as f64 / m as f64).powf(-1.0 / 6.0)
    );
    println!("\n[table2 done]");
}
