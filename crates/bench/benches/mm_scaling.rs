//! Experiment E8 — Lemmas 3 and 4: parallel matmul costs, plus the
//! 2D-SUMMA reference the paper's introduction alludes to ("3D matrix
//! multiplication, which incurs a smaller bandwidth cost than conventional
//! (2D) approaches").
//!
//! Checks:
//! * 1D dmm (reduce case): W stays O(I·J) as P grows (Lemma 3 / Eq. (8));
//! * 3D dmm: W scales as (IJK/P)^{2/3} (Lemma 4 / Eq. (9)) — exponent fit
//!   over a size sweep;
//! * 3D beats 2D SUMMA's bandwidth on cubic problems.

use qr3d_bench::report::{exponent_fit, header};
use qr3d_machine::{CostParams, Machine};
use qr3d_matrix::layout::BlockRow;
use qr3d_matrix::Matrix;
use qr3d_mm::brick::{BrickA, BrickB};
use qr3d_mm::dmm1d::dmm1d_reduce;
use qr3d_mm::dmm3d::{dmm3d, Grid3};
use qr3d_mm::summa::{summa2d, summa_local_a, summa_local_b, Grid2};

fn main() {
    header("Lemma 3 — 1D dmm (reduce case): W independent of P");
    let (m, i, j) = (2048usize, 16usize, 16usize);
    let left = Matrix::random(m, i, 1);
    let right = Matrix::random(m, j, 2);
    println!("{:>4} {:>10} {:>10}", "P", "W", "S");
    for p in [4usize, 8, 16, 32] {
        let lay = BlockRow::balanced(m, 1, p);
        let machine = Machine::new(p, CostParams::unit());
        let out = machine.run(|rank| {
            let w = rank.world();
            let rows = lay.local_rows(w.rank());
            let l = left.take_rows(&rows);
            let r = right.take_rows(&rows);
            dmm1d_reduce(rank, &w, &l, &r, 0)
        });
        let c = out.stats.critical();
        println!("{:>4} {:>10.0} {:>10.0}", p, c.words, c.msgs);
        assert!(
            c.words <= 8.0 * (i * j) as f64,
            "P={p}: Lemma 3 bandwidth must stay O(IJ)"
        );
    }
    println!("(Eq. (8): β·O(IJ) with α·O(log P) — bandwidth flat, latency logarithmic)");

    header("Lemma 4 — 3D dmm: bandwidth exponent on cubic problems (P = 8)");
    let p = 8;
    let grid = Grid3::new(2, 2, 2);
    let mut sizes = Vec::new();
    let mut words = Vec::new();
    println!("{:>6} {:>12} {:>10}", "n", "W", "S");
    for n in [16usize, 32, 64] {
        let a = Matrix::random(n, n, 3);
        let b = Matrix::random(n, n, 4);
        let brick_a = BrickA::new(grid, n, n, p);
        let brick_b = BrickB::new(grid, n, n, p);
        let machine = Machine::new(p, CostParams::unit());
        let out = machine.run(|rank| {
            let w = rank.world();
            let (q, r, s) = grid.coords(w.rank()).unwrap();
            let (ar, ac) = brick_a.block_of(q, r, s);
            let (br, bc) = brick_b.block_of(q, r, s);
            let a_loc = a.submatrix(ar.start, ar.end, ac.start, ac.end);
            let b_loc = b.submatrix(br.start, br.end, bc.start, bc.end);
            dmm3d(rank, &w, grid, &a_loc, &b_loc, n, n, n)
        });
        let c = out.stats.critical();
        sizes.push((n * n * n) as f64 / p as f64);
        words.push(c.words);
        println!("{:>6} {:>12.0} {:>10.0}", n, c.words, c.msgs);
    }
    let slope = exponent_fit(&sizes, &words);
    println!("measured W ∝ (IJK/P)^{slope:.3}  (Lemma 4 predicts exponent 2/3 ≈ 0.667)");
    assert!(
        (slope - 2.0 / 3.0).abs() < 0.15,
        "3D dmm bandwidth exponent {slope} too far from 2/3"
    );

    header("3D vs 2D SUMMA bandwidth (cubic n = 48)");
    let n = 48;
    let a = Matrix::random(n, n, 5);
    let b = Matrix::random(n, n, 6);
    for p in [8usize, 16] {
        let grid3 = Grid3::choose(n, n, n, p);
        let brick_a = BrickA::new(grid3, n, n, p);
        let brick_b = BrickB::new(grid3, n, n, p);
        let m3 = Machine::new(p, CostParams::unit());
        let w3 = m3
            .run(|rank| {
                let w = rank.world();
                match grid3.coords(w.rank()) {
                    Some((q, r, s)) => {
                        let (ar, ac) = brick_a.block_of(q, r, s);
                        let (br, bc) = brick_b.block_of(q, r, s);
                        let a_loc = a.submatrix(ar.start, ar.end, ac.start, ac.end);
                        let b_loc = b.submatrix(br.start, br.end, bc.start, bc.end);
                        dmm3d(rank, &w, grid3, &a_loc, &b_loc, n, n, n)
                    }
                    None => dmm3d(
                        rank,
                        &w,
                        grid3,
                        &Matrix::zeros(0, 0),
                        &Matrix::zeros(0, 0),
                        n,
                        n,
                        n,
                    ),
                }
            })
            .stats
            .critical()
            .words;
        let grid2 = Grid2::choose(p);
        let m2 = Machine::new(p, CostParams::unit());
        let w2 = m2
            .run(|rank| {
                let w = rank.world();
                let a_loc = summa_local_a(&a, grid2, w.rank());
                let b_loc = summa_local_b(&b, grid2, w.rank());
                summa2d(rank, &w, grid2, &a_loc, &b_loc, n, n, n)
            })
            .stats
            .critical()
            .words;
        println!(
            "P={p:<3} 3D grid {:?} W={w3:<8.0} 2D grid {}x{} W={w2:<8.0} ratio 2D/3D = {:.2}",
            (grid3.q, grid3.r, grid3.s),
            grid2.pr,
            grid2.pc,
            w2 / w3
        );
        assert!(w3 < w2, "P={p}: 3D must beat 2D SUMMA bandwidth on a cube");
    }
    println!("\n[mm scaling done]");
}
