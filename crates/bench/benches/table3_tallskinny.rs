//! Experiment E3 — reproduce **Table 3**: tall-skinny comparison
//! (`m/n = Ω(P)`).
//!
//! ```text
//! algorithm    #operations                 #words              #messages
//! 1d-house     mn²/P                       n² log P            n log P
//! tsqr         mn²/P + n³ log P            n² log P            log P
//! 1d-caqr-eg   mn²/P + n³(log P)^{1−2ε}    n²(log P)^{1−ε}     (log P)^{1+ε}
//! ```
//!
//! The shape claims to check: tsqr beats 1d-house in messages by Θ(n);
//! 1d-caqr-eg (ε = 1) beats tsqr in words by Θ(log P) while paying
//! Θ(log P) more messages.

use qr3d_bench::report::{cost_cell, header, ratio};
use qr3d_bench::{run_caqr1d, run_house1d, run_tsqr};
use qr3d_core::params::caqr1d_block;
use qr3d_cost::prelude::*;

fn main() {
    let n = 16;
    header("Table 3 — tall-skinny comparison (m = nP, n = 16)");
    println!(
        "{:<22} {:>4} {:>44}  {:>7} {:>7} {:>7}",
        "algorithm", "P", "measured (critical path)", "F/F̂", "W/Ŵ", "S/Ŝ"
    );
    for p in [4usize, 8, 16] {
        let m = n * p;
        let rows: Vec<(String, qr3d_machine::Clock, Cost3)> = vec![
            (
                "1d-house (b=1)".into(),
                run_house1d(m, n, p, 1, 7),
                house1d_cost(m, n, p),
            ),
            ("tsqr".into(), run_tsqr(m, n, p, 7), tsqr_cost(m, n, p)),
            (
                "1d-caqr-eg (ε=1/2)".into(),
                run_caqr1d(m, n, p, caqr1d_block(n, p, 0.5), 7),
                theorem2_cost(m, n, p, 0.5),
            ),
            (
                "1d-caqr-eg (ε=1)".into(),
                run_caqr1d(m, n, p, caqr1d_block(n, p, 1.0), 7),
                theorem2_cost(m, n, p, 1.0),
            ),
        ];
        for (name, c, f) in &rows {
            println!(
                "{:<22} {:>4} {:>44}  {:>7.2} {:>7.2} {:>7.2}",
                name,
                p,
                cost_cell(c),
                ratio(c.flops, f.flops),
                ratio(c.words, f.words),
                ratio(c.msgs, f.msgs),
            );
        }
        // Who-wins checks (the paper's qualitative claims).
        let (house, tsqr, caqr) = (&rows[0].1, &rows[1].1, &rows[3].1);
        assert!(
            tsqr.msgs < house.msgs,
            "P={p}: tsqr must beat 1d-house on latency"
        );
        if p >= 8 {
            assert!(
                caqr.words < tsqr.words,
                "P={p}: 1d-caqr-eg (ε=1) must beat tsqr on bandwidth"
            );
            assert!(
                caqr.msgs > tsqr.msgs,
                "P={p}: the bandwidth saving must cost messages (the tradeoff)"
            );
        }
        println!(
            "    P={p}: S ratio tsqr/1d-house = {:.3} (paper: Θ(1/n) = {:.3});  \
             W ratio caqr(ε=1)/tsqr = {:.2} (paper: Θ(1/log P) = {:.2})",
            tsqr.msgs / house.msgs,
            1.0 / n as f64,
            caqr.words / tsqr.words,
            1.0 / lg(p),
        );
    }
    println!("\n[table3 done]");
}
