//! Experiment — **the rank-revealing subsystem**: pivoted GEQP3 versus
//! randomized RRQR, and the rank-aware advisor.
//!
//! ```text
//! backend    pivot strategy            latency       rank answer
//! PivotQr    exact greedy tournament   Θ(n log P)    exact greedy
//! RandRrqr   Gaussian-sketch, local    O(log P)      sketch-detected
//! ```
//!
//! Claims checked on real executions:
//! * both backends detect the exact rank of constructed rank-k inputs
//!   and agree with the local `geqp3` kernel,
//! * RandRrqr spends ≥ 3× fewer critical-path messages than PivotQr on
//!   the same tall-skinny input (the point of the sketch),
//! * the rank-aware advisor routes a deficient-hinted tall-skinny input
//!   to a rank-revealing backend, and `factor_auto` then returns the
//!   exact rank with `‖A·P − Q·R‖/‖A‖ ≤ 1e-12`.

use qr3d_bench::report::header;
use qr3d_bench::{run_pivotqr, run_rrqr};
use qr3d_core::prelude::*;
use qr3d_machine::{CostParams, Machine};
use qr3d_matrix::gemm::matmul;
use qr3d_matrix::layout::BlockRow;
use qr3d_matrix::pivot::geqp3;
use qr3d_matrix::Matrix;

fn rank_k(m: usize, n: usize, k: usize, seed: u64) -> Matrix {
    let b = Matrix::random(m, k, seed);
    let c = Matrix::random(k, n, seed + 1000);
    matmul(&b, &c)
}

fn main() {
    let (m, n, p) = (512usize, 16usize, 8usize);

    header("critical-path costs (512×16, P = 8, full-rank input)");
    let piv = run_pivotqr(m, n, p, 7);
    let rrq = run_rrqr(m, n, p, 7);
    println!("{:<10} {:>14} {:>12} {:>10}", "backend", "F", "W", "S");
    for (name, c) in [("PivotQr", piv), ("RandRrqr", rrq)] {
        println!(
            "{name:<10} {:>14.0} {:>12.0} {:>10.0}",
            c.flops, c.words, c.msgs
        );
    }
    assert!(
        rrq.msgs * 3.0 <= piv.msgs,
        "the sketch must amortize the tournament: rrqr S = {} vs pivot S = {}",
        rrq.msgs,
        piv.msgs
    );

    header("rank detection on constructed rank-k inputs (64×16, P = 4)");
    println!(
        "{:>4} {:>10} {:>10} {:>10}",
        "k", "geqp3", "PivotQr", "RandRrqr"
    );
    let lay = BlockRow::balanced(64, 1, 4);
    let counts = lay.counts().to_vec();
    for k in [1usize, 4, 9, 16] {
        let a = rank_k(64, 16, k, 40 + k as u64);
        let local = geqp3(&a).rank;
        let machine = Machine::new(4, CostParams::unit());
        let counts2 = counts.clone();
        let aref = &a;
        let piv_rank = machine
            .run(|rank| {
                let w = rank.world();
                let a_loc = aref.take_rows(&lay.local_rows(w.rank()));
                pivot_qr_factor(rank, &w, &a_loc, &counts2)
            })
            .results[0]
            .rank;
        let counts2 = counts.clone();
        let rrqr_rank = machine
            .run(|rank| {
                let w = rank.world();
                let a_loc = aref.take_rows(&lay.local_rows(w.rank()));
                rrqr_factor(rank, &w, &a_loc, &counts2, &RrqrConfig::default())
            })
            .results[0]
            .rank;
        println!("{k:>4} {local:>10} {piv_rank:>10} {rrqr_rank:>10}");
        assert_eq!(local, k, "local geqp3 detects k = {k}");
        assert_eq!(piv_rank, k, "PivotQr detects k = {k}");
        assert_eq!(rrqr_rank, k, "RandRrqr matches geqp3 at k = {k}");
    }

    header("rank-aware advisor (cluster, rank hint = Deficient)");
    let a = rank_k(512, 16, 5, 77);
    let params = FactorParams::new(CostParams::cluster()).with_rank_hint(RankHint::Deficient);
    let backend = QrBackend::auto(512, 16, 8, &params);
    println!("advised backend for a suspected-deficient 512×16: {backend:?}");
    assert!(
        matches!(backend, QrBackend::PivotQr | QrBackend::RandRrqr),
        "a deficient hint must route to a rank-revealing backend, got {backend:?}"
    );
    let out = factor_auto(&a, 8, &params).expect("rank-revealing backends don't break down");
    println!(
        "detected rank {} (true 5), residual {:.2e}",
        out.detected_rank,
        out.residual(&a)
    );
    assert_eq!(out.detected_rank, 5, "exact rank through factor_auto");
    assert!(out.perm.is_some(), "permutation surfaced");
    assert!(out.residual(&a) <= 1e-12, "‖A·P − Q·R‖/‖A‖ ≤ 1e-12");

    header("silent-deficiency diagnostic (plain Householder)");
    let full = FactorParams::new(CostParams::cluster());
    let out = factor(&a, 8, QrBackend::Tsqr, &full).unwrap();
    println!(
        "Tsqr on the same rank-5 input: residual {:.2e}, detected_rank {}",
        out.residual(&a),
        out.detected_rank
    );
    assert!(
        out.detected_rank < 16,
        "the R-decay diagnostic must flag the deficiency"
    );

    println!("\nrrqr: all claims hold");
}
