//! Experiments E6 & E7 — validate the cost recurrences Eq. (11)
//! (1D-CAQR-EG) and Eq. (13) (3D-CAQR-EG) term by term.
//!
//! For a sweep of block sizes at fixed (m, n, P), the measured-to-predicted
//! ratio should stay within a narrow constant band if the implementation
//! realizes the analyzed communication pattern.

use qr3d_bench::report::{header, ratio};
use qr3d_bench::{run_caqr1d, run_caqr3d};
use qr3d_core::prelude::*;
use qr3d_cost::prelude::*;

fn main() {
    header("Eq. (11) — 1D-CAQR-EG cost recurrence, b sweep (m = 8n, n = 32, P = 8)");
    let (n, p) = (32usize, 8usize);
    let m = 8 * n;
    println!(
        "{:>5} | {:>11} {:>9} | {:>11} {:>9} | {:>9} {:>7}",
        "b", "W meas", "W/Ŵ", "F meas", "F/F̂", "S meas", "S/Ŝ"
    );
    let mut w_ratios = Vec::new();
    for b in [32usize, 16, 8, 4, 2] {
        let c = run_caqr1d(m, n, p, b, 21);
        let f = caqr1d_cost(m, n, p, b);
        w_ratios.push(ratio(c.words, f.words));
        println!(
            "{:>5} | {:>11.0} {:>9.2} | {:>11.0} {:>9.2} | {:>9.0} {:>7.2}",
            b,
            c.words,
            ratio(c.words, f.words),
            c.flops,
            ratio(c.flops, f.flops),
            c.msgs,
            ratio(c.msgs, f.msgs),
        );
    }
    let spread = w_ratios.iter().cloned().fold(f64::MIN, f64::max)
        / w_ratios.iter().cloned().fold(f64::MAX, f64::min);
    println!("W ratio spread across the b sweep: ×{spread:.2} (constant band expected)");
    assert!(
        spread < 8.0,
        "Eq. (11) W term tracks the measurement only loosely"
    );

    header("Eq. (13) — 3D-CAQR-EG cost recurrence, (b, b*) sweep (m = 4n, n = 64, P = 8)");
    let (n, p) = (64usize, 8usize);
    let m = 4 * n;
    println!(
        "{:>5} {:>5} | {:>11} {:>9} | {:>11} {:>9} | {:>9} {:>7}",
        "b", "b*", "W meas", "W/Ŵ", "F meas", "F/F̂", "S meas", "S/Ŝ"
    );
    for (b, bstar) in [(32usize, 16usize), (32, 8), (16, 8), (16, 4), (8, 4)] {
        let c = run_caqr3d(m, n, p, Caqr3dConfig::new(b, bstar), 22);
        let f = caqr3d_cost(m, n, p, b, bstar);
        println!(
            "{:>5} {:>5} | {:>11.0} {:>9.2} | {:>11.0} {:>9.2} | {:>9.0} {:>7.2}",
            b,
            bstar,
            c.words,
            ratio(c.words, f.words),
            c.flops,
            ratio(c.flops, f.flops),
            c.msgs,
            ratio(c.msgs, f.msgs),
        );
        // The dominant message term is (n/b*) log P: check the shape.
        let s_shape = c.msgs / ((n as f64 / bstar as f64) * lg(p));
        assert!(
            s_shape > 0.5 && s_shape < 60.0,
            "message count should scale like (n/b*) log P, got shape {s_shape}"
        );
    }
    println!("\n[recurrence validation done]");
}
