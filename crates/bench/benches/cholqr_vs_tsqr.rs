//! Experiment — **CholeskyQR2 vs TSQR** on tall-skinny inputs: the
//! Hutter & Solomonik tradeoff that motivates the multi-backend
//! dispatcher.
//!
//! ```text
//! algorithm    #operations        #words        #messages    valid for
//! tsqr         mn²/P + n³ log P   n² log P      log P        any κ
//! cholqr2      mn²/P + n³         n²            log P        κ ≲ 1/√ε
//! ```
//!
//! Claims checked on real simulated executions:
//! * cholqr2's critical-path words beat tsqr's by ≈ log P,
//! * both stay at `S = O(log P)` messages,
//! * the advisor flips from CholeskyQR2 to the Householder family when
//!   the condition estimate crosses the `1/√ε` guard.

use qr3d_bench::report::{cost_cell, header, ratio};
use qr3d_bench::{run_cholqr2, run_tsqr};
use qr3d_cost::prelude::*;

fn main() {
    let n = 16usize;
    header("CholeskyQR2 vs TSQR — tall-skinny (m = 32·P, n = 16)");
    println!(
        "{:<10} {:>4} {:>44}  {:>7} {:>7} {:>7}",
        "algorithm", "P", "measured (critical path)", "F/F̂", "W/Ŵ", "S/Ŝ"
    );
    for p in [4usize, 8, 16, 32] {
        let m = 32 * p;
        let tsqr = run_tsqr(m, n, p, 7);
        let chol = run_cholqr2(m, n, p, 7);
        for (name, c, f) in [
            ("tsqr", &tsqr, tsqr_cost(m, n, p)),
            ("cholqr2", &chol, cholqr2_cost(m, n, p)),
        ] {
            println!(
                "{:<10} {:>4} {:>44}  {:>7.2} {:>7.2} {:>7.2}",
                name,
                p,
                cost_cell(c),
                ratio(c.flops, f.flops),
                ratio(c.words, f.words),
                ratio(c.msgs, f.msgs),
            );
        }
        // Who wins: the Gram path drops tsqr's log P bandwidth factor.
        // The advantage is asymptotic in log P — at P = 4 (log P = 2)
        // the auto all-reduce may legitimately spend the 2× headroom on
        // halving messages instead — so gate the word claim on P ≥ 8.
        if p >= 8 {
            assert!(
                chol.words < tsqr.words,
                "P={p}: cholqr2 W={} must beat tsqr W={}",
                chol.words,
                tsqr.words
            );
        }
        // …and stays latency-optimal (allow the two-pass constant).
        let lg = (p as f64).log2().ceil();
        assert!(
            chol.msgs <= 8.0 * (lg + 1.0),
            "P={p}: cholqr2 S={} not O(log P)",
            chol.msgs
        );
    }

    header("advisor: κ decides the backend (4096×64, P=16, cluster)");
    let (m, n, p) = (4096usize, 64usize, 16usize);
    let mc = qr3d_machine::CostParams::cluster();
    for kappa in [1e2, 1e6, 1e9] {
        let rec = recommend_with_kappa(m, n, p, Some(kappa), mc.alpha, mc.beta, mc.gamma);
        println!("κ = {kappa:>8.0e}  →  {:?}", rec.choice);
        if kappa <= CHOLQR2_KAPPA_GUARD {
            assert!(matches!(rec.choice, Choice::CholQr2), "κ={kappa}: {rec:?}");
        } else {
            assert!(
                !matches!(rec.choice, Choice::CholQr2),
                "κ={kappa} is past the guard: {rec:?}"
            );
        }
    }
    println!("\nall CholeskyQR2-vs-TSQR claims verified");
}
