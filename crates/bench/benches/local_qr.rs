//! Criterion wall-time comparison of the blocked local QR kernel suite
//! against the unblocked references: `geqrt` (tiled panels + larfb via
//! three gemms) vs `geqrt_reference` (column-at-a-time rank-1 updates),
//! and the blocked `trsm`/`potrf` vs their scalar baselines.
//!
//! The regression *gate* for these kernels lives in `bench_gate`
//! (`speedup/geqrt_blocked_over_reference_*` records); this bench is the
//! detailed view — run `cargo bench -p qr3d-bench --bench local_qr`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qr3d_matrix::gemm::matmul_tn;
use qr3d_matrix::qr::{geqrt, geqrt_reference};
use qr3d_matrix::tri::{potrf, potrf_reference, trsm, trsm_reference, Side, Uplo};
use qr3d_matrix::Matrix;

fn bench_geqrt_blocked_vs_reference(c: &mut Criterion) {
    let mut g = c.benchmark_group("local_qr/geqrt");
    g.sample_size(10);
    for (m, n) in [(256usize, 64usize), (1024, 256)] {
        let a = Matrix::random(m, n, 3);
        g.bench_with_input(
            BenchmarkId::new("blocked", format!("{m}x{n}")),
            &a,
            |bench, a| bench.iter(|| geqrt(a)),
        );
        g.bench_with_input(
            BenchmarkId::new("reference", format!("{m}x{n}")),
            &a,
            |bench, a| bench.iter(|| geqrt_reference(a)),
        );
    }
    g.finish();
}

fn bench_trsm_blocked_vs_naive(c: &mut Criterion) {
    let n = 256usize;
    let r = {
        let a = Matrix::random(2 * n, n, 5);
        potrf(&matmul_tn(&a, &a)).expect("SPD")
    };
    let b = Matrix::random(n, n, 6);
    let mut g = c.benchmark_group("local_qr/trsm_256");
    g.sample_size(10);
    g.bench_function("blocked", |bench| {
        bench.iter(|| trsm(Side::Left, Uplo::Upper, false, false, &r, &b))
    });
    g.bench_function("naive", |bench| {
        bench.iter(|| trsm_reference(Side::Left, Uplo::Upper, false, false, &r, &b))
    });
    g.finish();
}

fn bench_potrf_blocked_vs_naive(c: &mut Criterion) {
    let n = 256usize;
    let gmat = {
        let a = Matrix::random(2 * n, n, 7);
        matmul_tn(&a, &a)
    };
    let mut g = c.benchmark_group("local_qr/potrf_256");
    g.sample_size(10);
    g.bench_function("blocked", |bench| bench.iter(|| potrf(&gmat).expect("SPD")));
    g.bench_function("naive", |bench| {
        bench.iter(|| potrf_reference(&gmat).expect("SPD"))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_geqrt_blocked_vs_reference,
    bench_trsm_blocked_vs_naive,
    bench_potrf_blocked_vs_naive
);
criterion_main!(benches);
