//! Experiment E10 — ablations of the design choices the paper leans on:
//!
//! 1. bidirectional-exchange vs binomial-tree broadcast/reduce (the
//!    Appendix A.2 optimization 1D-CAQR-EG exists to exploit);
//! 2. two-phase vs single-phase index vs direct all-to-all (\[HBJ96\] /
//!    [BHK+97]);
//! 3. tsqr vs 1D-CAQR-EG — the recursion is exactly "as if we had used
//!    bidirectional exchange reduce and broadcast within tsqr, despite
//!    the fact that these algorithms are inapplicable" (§6.3);
//! 4. 2d-house vs caqr panels (per-column vs per-panel latency).

use qr3d_bench::report::header;
use qr3d_bench::{run_caqr1d, run_caqr2d, run_house2d, run_tsqr};
use qr3d_collectives::alltoall::{all_to_all, all_to_all_direct, all_to_all_index};
use qr3d_collectives::bidir::{broadcast_bidir, reduce_bidir};
use qr3d_collectives::binomial::{broadcast_binomial, reduce_binomial};
use qr3d_collectives::BlockSizes;
use qr3d_core::house2d::Grid2Config;
use qr3d_core::params::caqr1d_block;
use qr3d_machine::{Clock, Comm, CostParams, Machine, Rank};

fn measure(p: usize, f: impl Fn(&mut Rank, &Comm) + Sync) -> Clock {
    Machine::new(p, CostParams::unit())
        .run(|rank| {
            let w = rank.world();
            f(rank, &w)
        })
        .stats
        .critical()
}

fn main() {
    header("Ablation 1 — broadcast/reduce: binomial tree vs bidirectional exchange");
    println!(
        "{:<10} {:>6} | {:>10} {:>8} | {:>10} {:>8}",
        "op", "B", "tree W", "tree S", "exch W", "exch S"
    );
    let p = 16;
    for b in [64usize, 1024, 8192] {
        let tree = measure(p, |rank, w| {
            let data = (w.rank() == 0).then(|| vec![1.0; b]);
            let _ = broadcast_binomial(rank, w, 0, data, b);
        });
        let exch = measure(p, |rank, w| {
            let data = (w.rank() == 0).then(|| vec![1.0; b]);
            let _ = broadcast_bidir(rank, w, 0, data, b);
        });
        println!(
            "{:<10} {:>6} | {:>10.0} {:>8.0} | {:>10.0} {:>8.0}",
            "broadcast", b, tree.words, tree.msgs, exch.words, exch.msgs
        );
        if b >= 1024 {
            assert!(
                exch.words < tree.words,
                "B={b}: exchange must win bandwidth"
            );
        }
        let tree = measure(p, |rank, w| {
            let _ = reduce_binomial(rank, w, 0, vec![1.0; b]);
        });
        let exch = measure(p, |rank, w| {
            let _ = reduce_bidir(rank, w, 0, vec![1.0; b]);
        });
        println!(
            "{:<10} {:>6} | {:>10.0} {:>8.0} | {:>10.0} {:>8.0}",
            "reduce", b, tree.words, tree.msgs, exch.words, exch.msgs
        );
    }

    header("Ablation 2 — all-to-all algorithms (P = 16, uniform B = 64)");
    let b = 64;
    let sizes = BlockSizes::uniform(p, b);
    let mk_blocks =
        |me: usize| -> Vec<Vec<f64>> { (0..p).map(|d| vec![(me + d) as f64; b]).collect() };
    let direct = measure(p, |rank, w| {
        let _ = all_to_all_direct(rank, w, mk_blocks(w.rank()), &sizes);
    });
    let index = measure(p, |rank, w| {
        let _ = all_to_all_index(rank, w, mk_blocks(w.rank()), &sizes);
    });
    let two_phase = measure(p, |rank, w| {
        let _ = all_to_all(rank, w, mk_blocks(w.rank()), &sizes);
    });
    println!("{:<12} {:>10} {:>8}", "variant", "W", "S");
    for (name, c) in [
        ("direct", &direct),
        ("index", &index),
        ("two-phase", &two_phase),
    ] {
        println!("{:<12} {:>10.0} {:>8.0}", name, c.words, c.msgs);
    }
    assert!(
        index.msgs < direct.msgs,
        "index algorithm must use fewer messages"
    );
    assert!(
        direct.words < index.words,
        "the latency saving costs bandwidth (blocks hop log P times)"
    );

    header("Ablation 3 — tsqr vs 1D-CAQR-EG (the §6.3 log-factor bandwidth saving)");
    println!("{:<22} {:>4} | {:>10} {:>8}", "algorithm", "P", "W", "S");
    let n = 32;
    for p in [8usize, 16, 32] {
        let m = n * p;
        let t = run_tsqr(m, n, p, 41);
        let c = run_caqr1d(m, n, p, caqr1d_block(n, p, 1.0), 41);
        println!(
            "{:<22} {:>4} | {:>10.0} {:>8.0}",
            "tsqr", p, t.words, t.msgs
        );
        println!(
            "{:<22} {:>4} | {:>10.0} {:>8.0}",
            "1d-caqr-eg (ε=1)", p, c.words, c.msgs
        );
        println!(
            "    P={p}: bandwidth saving ×{:.2} for ×{:.2} more messages",
            t.words / c.words,
            c.msgs / t.msgs
        );
        if p >= 16 {
            assert!(c.words < t.words);
        }
    }

    header("Ablation 4 — 2D panels: per-column (2d-house) vs tsqr (caqr)");
    let (m, n, p) = (256usize, 32usize, 8usize);
    let grid = Grid2Config::new(4, 2, 8);
    let house = run_house2d(m, n, p, grid, 42);
    let caqr = run_caqr2d(m, n, p, grid, 42);
    println!("2d-house: W={:.0} S={:.0}", house.words, house.msgs);
    println!("caqr-2d : W={:.0} S={:.0}", caqr.words, caqr.msgs);
    assert!(caqr.msgs < house.msgs, "tsqr panels must cut latency");

    header("Ablation 5 — §8.4: iterative (no superdiagonal T) vs recursive qr-eg");
    {
        use qr3d_core::iterative::caqr1d_iterative;
        use qr3d_core::prelude::*;
        use qr3d_machine::Machine;
        use qr3d_matrix::layout::BlockRow;
        use qr3d_matrix::Matrix;
        let (m, n, p, b) = (512usize, 32usize, 8usize, 8usize);
        let a = Matrix::random(m, n, 43);
        let lay = BlockRow::balanced(m, 1, p);
        let inner = Caqr1dConfig::new(b);
        let iter_cost = Machine::new(p, CostParams::unit())
            .run(|rank| {
                let w = rank.world();
                caqr1d_iterative(rank, &w, &a.take_rows(&lay.local_rows(w.rank())), b, &inner)
            })
            .stats
            .critical();
        let rec_cost = Machine::new(p, CostParams::unit())
            .run(|rank| {
                let w = rank.world();
                caqr1d_factor(rank, &w, &a.take_rows(&lay.local_rows(w.rank())), &inner)
            })
            .stats
            .critical();
        println!(
            "recursive (full T):      F={:.0} W={:.0} S={:.0}",
            rec_cost.flops, rec_cost.words, rec_cost.msgs
        );
        println!(
            "iterative (panel T only): F={:.0} W={:.0} S={:.0}",
            iter_cost.flops, iter_cost.words, iter_cost.msgs
        );
        println!(
            "skipping Lines 11–13 saves {:.0}% of the flops (\"we can avoid ever \
             computing superdiagonal blocks of T\")",
            100.0 * (1.0 - iter_cost.flops / rec_cost.flops)
        );
        assert!(iter_cost.flops < rec_cost.flops);
    }

    println!("\n[ablations done]");
}
