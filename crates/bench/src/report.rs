//! Reporting utilities: table formatting, log-log scaling-exponent fits,
//! and the machine-readable [`BenchReport`] format behind CI's
//! bench-regression gate (`bench_gate` emits a report, CI diffs it
//! against the committed `BENCH_baseline.json`).

use qr3d_machine::Clock;

/// How a [`BenchRecord`] is compared against its baseline value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateMode {
    /// Two-sided: `|cur − base| ≤ tol·|base|`. For deterministic
    /// quantities (the simulator's logical cost counts), where *any*
    /// drift means the algorithm changed.
    Eq,
    /// Upper gate: `cur ≤ base·(1 + tol)`. For wall times — getting
    /// faster is never a regression.
    Le,
    /// Lower gate: `cur ≥ base·(1 − tol)`. For speedup ratios — getting
    /// better is never a regression.
    Ge,
}

impl GateMode {
    /// Wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            GateMode::Eq => "eq",
            GateMode::Le => "le",
            GateMode::Ge => "ge",
        }
    }

    /// Inverse of [`GateMode::as_str`].
    pub fn parse(s: &str) -> Result<GateMode, String> {
        match s {
            "eq" => Ok(GateMode::Eq),
            "le" => Ok(GateMode::Le),
            "ge" => Ok(GateMode::Ge),
            other => Err(format!("unknown gate mode {other:?}")),
        }
    }
}

/// One gated measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Stable identifier (also the join key against the baseline).
    pub name: String,
    /// The measured value.
    pub value: f64,
    /// Comparison direction.
    pub mode: GateMode,
    /// Relative tolerance (`0.01` = 1%). Stored in the *baseline*; the
    /// baseline's tolerance governs the comparison.
    pub tolerance: f64,
}

/// A set of gated measurements, serializable to a small JSON subset
/// (objects, arrays, strings, finite numbers — hand-rolled; the
/// workspace is deliberately dependency-free).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchReport {
    /// The measurements, in emission order.
    pub records: Vec<BenchRecord>,
}

impl BenchReport {
    /// Add a measurement.
    pub fn push(&mut self, name: impl Into<String>, value: f64, mode: GateMode, tolerance: f64) {
        self.records.push(BenchRecord {
            name: name.into(),
            value,
            mode,
            tolerance,
        });
    }

    /// Serialize to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let comma = if i + 1 < self.records.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": {}, \"value\": {}, \"mode\": \"{}\", \"tolerance\": {}}}{comma}\n",
                json_string(&r.name),
                json_number(r.value),
                r.mode.as_str(),
                json_number(r.tolerance),
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse a report emitted by [`BenchReport::to_json`] (tolerant of
    /// whitespace and key order).
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let tokens = lex_json(text)?;
        parse_report(&tokens)
    }

    /// Names of records present in `current` but absent from this
    /// baseline — measurements that exist but are *not gated*. The
    /// `bench_gate` binary treats these as check failures so a new
    /// metric whose baseline was never regenerated cannot ship silently
    /// unchecked.
    pub fn ungated(&self, current: &BenchReport) -> Vec<String> {
        current
            .records
            .iter()
            .filter(|c| !self.records.iter().any(|b| b.name == c.name))
            .map(|c| c.name.clone())
            .collect()
    }

    /// Compare `current` against this baseline. Returns one human-readable
    /// violation per failed gate (empty = pass). Every baseline record
    /// must be present in `current`; records present only in `current`
    /// are not failures — list them with [`BenchReport::ungated`].
    pub fn compare(&self, current: &BenchReport) -> Vec<String> {
        let mut violations = Vec::new();
        for base in &self.records {
            let Some(cur) = current.records.iter().find(|r| r.name == base.name) else {
                violations.push(format!("{}: missing from current report", base.name));
                continue;
            };
            let (b, c, tol) = (base.value, cur.value, base.tolerance);
            let rel = |x: f64| x * b.abs().max(f64::MIN_POSITIVE);
            let ok = match base.mode {
                GateMode::Eq => (c - b).abs() <= rel(tol),
                GateMode::Le => c <= b + rel(tol),
                GateMode::Ge => c >= b - rel(tol),
            };
            if !ok {
                violations.push(format!(
                    "{}: {} {:.6e} violates baseline {:.6e} (mode {}, tolerance {})",
                    base.name,
                    "current",
                    c,
                    b,
                    base.mode.as_str(),
                    tol
                ));
            }
        }
        violations
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(x: f64) -> String {
    assert!(x.is_finite(), "JSON numbers must be finite");
    // Round-trippable without scientific-notation parsing surprises.
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Colon,
    Comma,
    Str(String),
    Num(f64),
}

fn lex_json(text: &str) -> Result<Vec<Tok>, String> {
    let mut toks = Vec::new();
    let bytes: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '{' => {
                toks.push(Tok::LBrace);
                i += 1;
            }
            '}' => {
                toks.push(Tok::RBrace);
                i += 1;
            }
            '[' => {
                toks.push(Tok::LBracket);
                i += 1;
            }
            ']' => {
                toks.push(Tok::RBracket);
                i += 1;
            }
            ':' => {
                toks.push(Tok::Colon);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    let Some(&c) = bytes.get(i) else {
                        return Err("unterminated string".into());
                    };
                    i += 1;
                    match c {
                        '"' => break,
                        '\\' => {
                            let Some(&e) = bytes.get(i) else {
                                return Err("dangling escape".into());
                            };
                            i += 1;
                            match e {
                                '"' => s.push('"'),
                                '\\' => s.push('\\'),
                                '/' => s.push('/'),
                                'n' => s.push('\n'),
                                't' => s.push('\t'),
                                'u' => {
                                    let hex: String =
                                        bytes.get(i..i + 4).unwrap_or(&[]).iter().collect();
                                    let code = u32::from_str_radix(&hex, 16)
                                        .map_err(|_| "bad \\u escape".to_string())?;
                                    s.push(char::from_u32(code).ok_or("bad codepoint")?);
                                    i += 4;
                                }
                                other => return Err(format!("unsupported escape \\{other}")),
                            }
                        }
                        c => s.push(c),
                    }
                }
                toks.push(Tok::Str(s));
            }
            '-' | '0'..='9' => {
                let start = i;
                while i < bytes.len() && matches!(bytes[i], '-' | '+' | '.' | 'e' | 'E' | '0'..='9')
                {
                    i += 1;
                }
                let lit: String = bytes[start..i].iter().collect();
                let v: f64 = lit.parse().map_err(|_| format!("bad number {lit:?}"))?;
                toks.push(Tok::Num(v));
            }
            other => return Err(format!("unexpected character {other:?}")),
        }
    }
    Ok(toks)
}

/// Parse the `{"version": …, "records": [{…}, …]}` shape, ignoring
/// unknown top-level keys (forward compatibility).
fn parse_report(toks: &[Tok]) -> Result<BenchReport, String> {
    let mut i = 0;
    expect(toks, &mut i, Tok::LBrace)?;
    let mut report = BenchReport::default();
    loop {
        let key = match toks.get(i) {
            Some(Tok::Str(k)) => k.clone(),
            Some(Tok::RBrace) => break,
            other => return Err(format!("expected key, got {other:?}")),
        };
        i += 1;
        expect(toks, &mut i, Tok::Colon)?;
        if key == "records" {
            expect(toks, &mut i, Tok::LBracket)?;
            while toks.get(i) != Some(&Tok::RBracket) {
                report.records.push(parse_record(toks, &mut i)?);
                if toks.get(i) == Some(&Tok::Comma) {
                    i += 1;
                }
            }
            i += 1; // consume ]
        } else {
            // Skip a scalar value (version etc.).
            match toks.get(i) {
                Some(Tok::Num(_)) | Some(Tok::Str(_)) => i += 1,
                other => return Err(format!("unsupported value for {key:?}: {other:?}")),
            }
        }
        if toks.get(i) == Some(&Tok::Comma) {
            i += 1;
        }
    }
    Ok(report)
}

fn parse_record(toks: &[Tok], i: &mut usize) -> Result<BenchRecord, String> {
    expect(toks, i, Tok::LBrace)?;
    let (mut name, mut value, mut mode, mut tolerance) = (None, None, None, None);
    while toks.get(*i) != Some(&Tok::RBrace) {
        let key = match toks.get(*i) {
            Some(Tok::Str(k)) => k.clone(),
            other => return Err(format!("expected record key, got {other:?}")),
        };
        *i += 1;
        expect(toks, i, Tok::Colon)?;
        match (key.as_str(), toks.get(*i)) {
            ("name", Some(Tok::Str(s))) => name = Some(s.clone()),
            ("value", Some(Tok::Num(v))) => value = Some(*v),
            ("mode", Some(Tok::Str(s))) => mode = Some(GateMode::parse(s)?),
            ("tolerance", Some(Tok::Num(v))) => tolerance = Some(*v),
            (k, v) => return Err(format!("unexpected record field {k:?}: {v:?}")),
        }
        *i += 1;
        if toks.get(*i) == Some(&Tok::Comma) {
            *i += 1;
        }
    }
    *i += 1; // consume }
    Ok(BenchRecord {
        name: name.ok_or("record missing name")?,
        value: value.ok_or("record missing value")?,
        mode: mode.ok_or("record missing mode")?,
        tolerance: tolerance.ok_or("record missing tolerance")?,
    })
}

fn expect(toks: &[Tok], i: &mut usize, want: Tok) -> Result<(), String> {
    if toks.get(*i) == Some(&want) {
        *i += 1;
        Ok(())
    } else {
        Err(format!("expected {want:?}, got {:?}", toks.get(*i)))
    }
}

/// Least-squares slope of `log(y)` against `log(x)` — the empirical
/// scaling exponent of `y ∝ x^slope`.
///
/// # Panics
/// If fewer than two points or any non-positive coordinate.
pub fn exponent_fit(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "point count mismatch");
    assert!(xs.len() >= 2, "need at least two points to fit a slope");
    let lx: Vec<f64> = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "log-log fit needs positive x");
            x.ln()
        })
        .collect();
    let ly: Vec<f64> = ys
        .iter()
        .map(|&y| {
            assert!(y > 0.0, "log-log fit needs positive y");
            y.ln()
        })
        .collect();
    let n = lx.len() as f64;
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let sxy: f64 = lx.iter().zip(&ly).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = lx.iter().map(|x| (x - mx) * (x - mx)).sum();
    sxy / sxx
}

/// Format a measured clock as a compact `F/W/S` cell.
pub fn cost_cell(c: &Clock) -> String {
    format!("F={:<12.0} W={:<10.0} S={:<6.0}", c.flops, c.words, c.msgs)
}

/// Print a section header in the style used across all bench targets.
pub fn header(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Print a ruled table row from pre-formatted cells.
pub fn row(cells: &[String]) {
    println!("{}", cells.join(" | "));
}

/// `x / y` guarding against division by zero (returns 0 when `y = 0`).
pub fn ratio(x: f64, y: f64) -> f64 {
    if y == 0.0 {
        0.0
    } else {
        x / y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_power_law_recovered() {
        let xs = [1.0f64, 2.0, 4.0, 8.0];
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x.powf(1.5)).collect();
        let slope = exponent_fit(&xs, &ys);
        assert!((slope - 1.5).abs() < 1e-12);
    }

    #[test]
    fn constant_series_has_zero_slope() {
        let xs = [1.0, 10.0, 100.0];
        let ys = [7.0, 7.0, 7.0];
        assert!(exponent_fit(&xs, &ys).abs() < 1e-12);
    }

    #[test]
    fn noisy_fit_close() {
        let xs = [2.0, 4.0, 8.0, 16.0, 32.0];
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| x * x * (1.0 + 0.05 * (i as f64 % 2.0)))
            .collect();
        let slope = exponent_fit(&xs, &ys);
        assert!((slope - 2.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "two points")]
    fn single_point_rejected() {
        let _ = exponent_fit(&[1.0], &[1.0]);
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(ratio(5.0, 0.0), 0.0);
        assert_eq!(ratio(6.0, 2.0), 3.0);
    }

    fn sample_report() -> BenchReport {
        let mut r = BenchReport::default();
        r.push("cost/tsqr/words", 1536.0, GateMode::Eq, 0.01);
        r.push("time/gemm_192", 2.5e-3, GateMode::Le, 10.0);
        r.push("speedup/\"quoted\\name\"", 3.75, GateMode::Ge, 0.6);
        r
    }

    #[test]
    fn json_roundtrip() {
        let r = sample_report();
        let parsed = BenchReport::from_json(&r.to_json()).expect("own output parses");
        assert_eq!(parsed, r);
    }

    #[test]
    fn json_tolerates_whitespace_and_key_order() {
        let text = r#"
            { "version": 1, "records": [
                { "tolerance": 0.5, "mode": "ge", "value": 3.0, "name": "x" }
            ] }
        "#;
        let r = BenchReport::from_json(text).unwrap();
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.records[0].name, "x");
        assert_eq!(r.records[0].mode, GateMode::Ge);
    }

    #[test]
    fn json_rejects_malformed() {
        assert!(BenchReport::from_json("{").is_err());
        assert!(BenchReport::from_json(r#"{"records": [{"name": "x"}]}"#).is_err());
        assert!(BenchReport::from_json(
            r#"{"records": [{"name": "x", "value": 1.0, "mode": "zz", "tolerance": 0.1}]}"#
        )
        .is_err());
    }

    #[test]
    fn compare_passes_identical_reports() {
        let r = sample_report();
        assert!(r.compare(&r).is_empty());
    }

    #[test]
    fn compare_modes_gate_in_the_right_direction() {
        let mut base = BenchReport::default();
        base.push("exact", 100.0, GateMode::Eq, 0.01);
        base.push("wall", 1.0, GateMode::Le, 0.5);
        base.push("speedup", 4.0, GateMode::Ge, 0.25);

        // Within tolerance / improving directions: pass.
        let mut ok = BenchReport::default();
        ok.push("exact", 100.5, GateMode::Eq, 0.0);
        ok.push("wall", 0.1, GateMode::Le, 0.0); // faster is fine
        ok.push("speedup", 9.0, GateMode::Ge, 0.0); // better is fine
        assert!(base.compare(&ok).is_empty(), "{:?}", base.compare(&ok));

        // Violations in each direction.
        let mut bad = BenchReport::default();
        bad.push("exact", 110.0, GateMode::Eq, 0.0);
        bad.push("wall", 2.0, GateMode::Le, 0.0);
        bad.push("speedup", 2.0, GateMode::Ge, 0.0);
        let v = base.compare(&bad);
        assert_eq!(v.len(), 3, "{v:?}");
    }

    #[test]
    fn compare_flags_missing_records() {
        let base = sample_report();
        let v = base.compare(&BenchReport::default());
        assert_eq!(v.len(), base.records.len());
        assert!(v[0].contains("missing"));
    }

    #[test]
    fn ungated_lists_current_only_records() {
        let base = sample_report();
        let mut cur = sample_report();
        cur.push("brand/new_metric", 1.0, GateMode::Eq, 0.1);
        // Not a gate failure…
        assert!(base.compare(&cur).is_empty());
        // …but surfaced for the caller to warn about.
        assert_eq!(base.ungated(&cur), vec!["brand/new_metric".to_string()]);
        assert!(base.ungated(&base).is_empty());
    }

    #[test]
    fn baseline_tolerance_governs() {
        // Current's tolerance field is ignored; the committed baseline
        // decides the policy.
        let mut base = BenchReport::default();
        base.push("x", 100.0, GateMode::Eq, 0.5);
        let mut cur = BenchReport::default();
        cur.push("x", 140.0, GateMode::Eq, 0.0);
        assert!(base.compare(&cur).is_empty());
    }
}
