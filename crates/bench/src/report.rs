//! Reporting utilities: table formatting and log-log scaling-exponent
//! fits, used to compare measured costs against the paper's formulas.

use qr3d_machine::Clock;

/// Least-squares slope of `log(y)` against `log(x)` — the empirical
/// scaling exponent of `y ∝ x^slope`.
///
/// # Panics
/// If fewer than two points or any non-positive coordinate.
pub fn exponent_fit(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "point count mismatch");
    assert!(xs.len() >= 2, "need at least two points to fit a slope");
    let lx: Vec<f64> = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "log-log fit needs positive x");
            x.ln()
        })
        .collect();
    let ly: Vec<f64> = ys
        .iter()
        .map(|&y| {
            assert!(y > 0.0, "log-log fit needs positive y");
            y.ln()
        })
        .collect();
    let n = lx.len() as f64;
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let sxy: f64 = lx.iter().zip(&ly).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = lx.iter().map(|x| (x - mx) * (x - mx)).sum();
    sxy / sxx
}

/// Format a measured clock as a compact `F/W/S` cell.
pub fn cost_cell(c: &Clock) -> String {
    format!("F={:<12.0} W={:<10.0} S={:<6.0}", c.flops, c.words, c.msgs)
}

/// Print a section header in the style used across all bench targets.
pub fn header(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Print a ruled table row from pre-formatted cells.
pub fn row(cells: &[String]) {
    println!("{}", cells.join(" | "));
}

/// `x / y` guarding against division by zero (returns 0 when `y = 0`).
pub fn ratio(x: f64, y: f64) -> f64 {
    if y == 0.0 {
        0.0
    } else {
        x / y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_power_law_recovered() {
        let xs = [1.0f64, 2.0, 4.0, 8.0];
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x.powf(1.5)).collect();
        let slope = exponent_fit(&xs, &ys);
        assert!((slope - 1.5).abs() < 1e-12);
    }

    #[test]
    fn constant_series_has_zero_slope() {
        let xs = [1.0, 10.0, 100.0];
        let ys = [7.0, 7.0, 7.0];
        assert!(exponent_fit(&xs, &ys).abs() < 1e-12);
    }

    #[test]
    fn noisy_fit_close() {
        let xs = [2.0, 4.0, 8.0, 16.0, 32.0];
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| x * x * (1.0 + 0.05 * (i as f64 % 2.0)))
            .collect();
        let slope = exponent_fit(&xs, &ys);
        assert!((slope - 2.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "two points")]
    fn single_point_rejected() {
        let _ = exponent_fit(&[1.0], &[1.0]);
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(ratio(5.0, 0.0), 0.0);
        assert_eq!(ratio(6.0, 2.0), 3.0);
    }
}
