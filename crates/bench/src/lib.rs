//! # qr3d-bench — the experiment harness
//!
//! Shared runners and reporting utilities behind the bench targets that
//! regenerate every table and tradeoff figure of the paper (see the
//! experiment index in `DESIGN.md` and results in `EXPERIMENTS.md`):
//!
//! | target                 | paper artifact                           |
//! |------------------------|------------------------------------------|
//! | `table1_collectives`   | Table 1 (collective costs)               |
//! | `table2_squareish`     | Table 2 (square-ish algorithm comparison)|
//! | `table3_tallskinny`    | Table 3 (tall-skinny comparison)         |
//! | `tradeoff_sweeps`      | Theorems 1–2 bandwidth/latency tradeoffs |
//! | `validate_recurrences` | Equations (11) and (13)                  |
//! | `mm_scaling`           | Lemmas 3–4 (+ 2D SUMMA reference)        |
//! | `strong_scaling`       | §1/§8 machine-dependent winners          |
//! | `ablations`            | collective & base-case design choices    |
//! | `kernels` (criterion)  | wall-time of the local kernels           |
//!
//! Every runner executes the *real* algorithm on the simulated machine,
//! verifies the result numerically, and returns the critical-path
//! [`Clock`] — so every number printed comes from a correct execution.

use std::sync::Arc;
use std::time::Instant;

use qr3d_core::prelude::*;
use qr3d_machine::{Clock, CostParams, Machine, Rank, Transport};
use qr3d_matrix::gemm::{matmul, matmul_tn};
use qr3d_matrix::layout::BlockRow;
use qr3d_matrix::Matrix;

pub mod report;

/// Tolerance used by the harness' correctness gates.
pub const TOL: f64 = 1e-9;

/// Run tsqr on an `m × n` matrix over `p` ranks; verify; return the
/// critical-path costs.
pub fn run_tsqr(m: usize, n: usize, p: usize, seed: u64) -> Clock {
    let a = Matrix::random(m, n, seed);
    let lay = BlockRow::balanced(m, 1, p);
    let machine = Machine::new(p, CostParams::unit());
    let out = machine.run(|rank| {
        let w = rank.world();
        let a_loc = a.take_rows(&lay.local_rows(w.rank()));
        tsqr_factor(rank, &w, &a_loc)
    });
    let fac = qr3d_core::verify::assemble_block_row(&out.results, lay.counts());
    assert!(fac.residual(&a) < TOL, "tsqr residual");
    out.stats.critical()
}

/// Run checksum-coded fault-tolerant tsqr (`tsqr_factor_ft`) fault-free
/// on `p` compute ranks plus `c` spares; verify the residual; return
/// the critical-path costs. Against `run_tsqr` this measures the
/// erasure-coding prologue's explicit `(F, W, S)` overhead — the price
/// of single-rank failure coverage when nothing actually fails.
pub fn run_tsqr_ft(m: usize, n: usize, p: usize, c: usize, seed: u64) -> Clock {
    let a = Matrix::random(m, n, seed);
    let lay = BlockRow::balanced(m, 1, p);
    let mp = m / p;
    let machine = Machine::new(p + c, CostParams::unit());
    let cfg = FtConfig {
        spares: c,
        ..FtConfig::default()
    };
    let out = machine.run(|rank| {
        let w = rank.world();
        let a_loc = if w.rank() < p {
            a.take_rows(&lay.local_rows(w.rank()))
        } else {
            Matrix::zeros(mp, n)
        };
        tsqr_factor_ft(rank, &w, &a_loc, &cfg)
    });
    let factors: Vec<QrFactors> = out.results[..p]
        .iter()
        .map(|r| match r {
            FtResult::Compute(f) => f.clone(),
            other => panic!("fault-free rank returned {other:?}"),
        })
        .collect();
    let fac = qr3d_core::verify::assemble_block_row(&factors, &lay.counts()[..p]);
    assert!(fac.residual(&a) < TOL, "tsqr_ft residual");
    out.stats.critical()
}

/// Run CholeskyQR2 on an `m × n` matrix over `p` ranks; verify explicit-Q
/// orthogonality and the residual; return the critical-path costs.
pub fn run_cholqr2(m: usize, n: usize, p: usize, seed: u64) -> Clock {
    let a = Matrix::random(m, n, seed);
    let lay = BlockRow::balanced(m, 1, p);
    let machine = Machine::new(p, CostParams::unit());
    let out = machine.run(|rank| {
        let w = rank.world();
        let a_loc = a.take_rows(&lay.local_rows(w.rank()));
        cholqr2_factor(rank, &w, &a_loc).expect("uniform random inputs are well-conditioned")
    });
    let starts = lay.starts();
    let mut q = Matrix::zeros(m, n);
    for (rk, fac) in out.results.iter().enumerate() {
        q.set_submatrix(starts[rk], 0, &fac.q_local);
    }
    let r = &out.results[0].r;
    let resid = matmul(&q, r).sub(&a).frobenius_norm() / a.frobenius_norm();
    assert!(resid < TOL, "cholqr2 residual");
    let orth = matmul_tn(&q, &q).sub(&Matrix::identity(n)).max_abs();
    assert!(orth < TOL, "cholqr2 orthogonality");
    out.stats.critical()
}

/// Run the **fused** CholeskyQR2 batch: `k` independent `m × n` problems
/// in one warm-executor job sharing two all-reduces (the service layer's
/// latency amortization). Verify every problem; return the batch's
/// critical-path costs.
pub fn run_cholqr2_batch(m: usize, n: usize, p: usize, k: usize, seed: u64) -> Clock {
    let problems: Vec<Matrix> = (0..k)
        .map(|j| Matrix::random(m, n, seed + j as u64))
        .collect();
    let mut session = Session::new(p, FactorParams::new(CostParams::unit()).with_kappa(100.0));
    let batch = session.factor_batch(&problems, QrBackend::CholQr2);
    assert!(batch.fused, "same-shape CholeskyQR2 batches must fuse");
    for (a, out) in problems.iter().zip(&batch.outputs) {
        let out = out
            .as_ref()
            .expect("uniform random inputs are well-conditioned");
        assert!(out.residual(a) < TOL, "cholqr2 batch residual");
        assert!(out.orthogonality() < TOL, "cholqr2 batch orthogonality");
    }
    batch.critical
}

/// `run_tsqr` with the message substrate chosen explicitly instead of
/// from `QR3D_TRANSPORT`. The charged clocks live above the
/// [`Transport`] boundary, so the bench gate pins this clock against
/// the mpsc one: the ratio of their message counts must be exactly 1.
pub fn run_tsqr_over(
    transport: Arc<dyn Transport>,
    m: usize,
    n: usize,
    p: usize,
    seed: u64,
) -> Clock {
    let a = Matrix::random(m, n, seed);
    let lay = BlockRow::balanced(m, 1, p);
    let machine = Machine::new(p, CostParams::unit()).with_transport(transport);
    let out = machine.run(|rank| {
        let w = rank.world();
        let a_loc = a.take_rows(&lay.local_rows(w.rank()));
        tsqr_factor(rank, &w, &a_loc)
    });
    let fac = qr3d_core::verify::assemble_block_row(&out.results, lay.counts());
    assert!(fac.residual(&a) < TOL, "tsqr residual");
    out.stats.critical()
}

/// `run_cholqr2_batch` with the message substrate chosen explicitly —
/// the fused batch shares one reduction tree across problems, the
/// heaviest traffic pattern in the repo, so it is the other
/// transport-independence record the bench gate pins.
pub fn run_cholqr2_batch_over(
    transport: Arc<dyn Transport>,
    m: usize,
    n: usize,
    p: usize,
    k: usize,
    seed: u64,
) -> Clock {
    let problems: Vec<Matrix> = (0..k)
        .map(|j| Matrix::random(m, n, seed + j as u64))
        .collect();
    let params = FactorParams::new(CostParams::unit()).with_kappa(100.0);
    let machine = Machine::new(p, params.machine).with_transport(transport);
    let mut session = Session::on_machine(machine, params);
    let batch = session.factor_batch(&problems, QrBackend::CholQr2);
    assert!(batch.fused, "same-shape CholeskyQR2 batches must fuse");
    for (a, out) in problems.iter().zip(&batch.outputs) {
        let out = out
            .as_ref()
            .expect("uniform random inputs are well-conditioned");
        assert!(out.residual(a) < TOL, "cholqr2 batch residual");
        assert!(out.orthogonality() < TOL, "cholqr2 batch orthogonality");
    }
    batch.critical
}

/// Wall-clock seconds to run `jobs` identical TSQR factorizations
/// **cold** (a fresh `Machine::run` per call — P thread spawns + joins
/// each time) versus **warm** (one persistent executor, jobs submitted
/// back-to-back). Returns `(cold, warm)`; `cold / warm` is the
/// serving-throughput speedup a warm session buys.
pub fn executor_warm_vs_cold_secs(m: usize, n: usize, p: usize, jobs: usize) -> (f64, f64) {
    let a = Matrix::random(m, n, 42);
    let lay = BlockRow::balanced(m, 1, p);
    let job = |rank: &mut Rank| {
        let w = rank.world();
        tsqr_factor(rank, &w, &a.take_rows(&lay.local_rows(w.rank())))
    };
    let machine = Machine::new(p, CostParams::unit());
    // Warm path first: it also pre-faults the allocator and page cache,
    // which is *generous to the cold path* measured second.
    let mut exec = machine.executor();
    let t = Instant::now();
    for _ in 0..jobs {
        let _ = exec.submit(job);
    }
    let warm = t.elapsed().as_secs_f64();
    let t = Instant::now();
    for _ in 0..jobs {
        let _ = machine.run(job);
    }
    let cold = t.elapsed().as_secs_f64();
    (cold, warm)
}

/// What a closed-loop service load measured: total wall-clock seconds
/// and the per-request submit→result latencies (seconds, submission
/// order).
#[derive(Debug, Clone)]
pub struct ServiceLoad {
    /// Wall-clock seconds for the whole load.
    pub secs: f64,
    /// Per-request latencies in seconds.
    pub latencies: Vec<f64>,
}

impl ServiceLoad {
    /// Requests served per second.
    pub fn reqs_per_sec(&self) -> f64 {
        self.latencies.len() as f64 / self.secs.max(f64::MIN_POSITIVE)
    }

    /// The `q`-quantile latency (`0.5` = p50, `0.99` = p99), in seconds.
    pub fn latency_quantile(&self, q: f64) -> f64 {
        let mut sorted = self.latencies.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        if sorted.is_empty() {
            return 0.0;
        }
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }
}

/// Drive a [`QrService`] with `clients` closed-loop threads, each
/// submitting `jobs_each` TSQR problems of the same `m × n` shape
/// (submit, wait, repeat — the arrival pattern a shared service sees
/// from synchronous callers). `coalesced` toggles the scheduler between
/// the default coalescing thresholds and [`ServiceConfig::uncoalesced`];
/// admission blocks (no request is shed), so every latency sample is a
/// served request. Each result is residual-checked against its input.
pub fn service_closed_loop(
    m: usize,
    n: usize,
    p: usize,
    clients: usize,
    jobs_each: usize,
    coalesced: bool,
) -> ServiceLoad {
    let params = FactorParams::new(CostParams::unit());
    let mut cfg = ServiceConfig::new(p, params)
        .with_pool(2)
        .with_queue_cap(64)
        .with_admission(Admission::Block {
            timeout: std::time::Duration::from_secs(120),
        });
    if !coalesced {
        cfg = cfg.uncoalesced();
    }
    let svc = QrService::start(cfg);
    let t = Instant::now();
    let mut latencies: Vec<Vec<f64>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let svc = &svc;
                s.spawn(move || {
                    let a = Matrix::random(m, n, 100 + c as u64);
                    let mut lat = Vec::with_capacity(jobs_each);
                    for _ in 0..jobs_each {
                        let t = Instant::now();
                        let handle = svc
                            .submit_with(a.clone(), QrBackend::Tsqr)
                            .expect("blocking admission accepts");
                        let res = handle.wait();
                        lat.push(t.elapsed().as_secs_f64());
                        let out = res.output.expect("tsqr on full-rank input");
                        assert!(out.residual(&a) < TOL, "served factorization is wrong");
                    }
                    lat
                })
            })
            .collect();
        for h in handles {
            latencies.push(h.join().expect("client thread"));
        }
    });
    ServiceLoad {
        secs: t.elapsed().as_secs_f64(),
        latencies: latencies.into_iter().flatten().collect(),
    }
}

/// The naive baseline for [`service_closed_loop`]: the same closed-loop
/// client load, but every request pays a throwaway
/// [`qr3d_core::backend::factor`] — a fresh machine and `P` thread
/// spawns per call, with no admission control and no batching.
pub fn spawn_per_request_closed_loop(
    m: usize,
    n: usize,
    p: usize,
    clients: usize,
    jobs_each: usize,
) -> ServiceLoad {
    let params = FactorParams::new(CostParams::unit());
    let t = Instant::now();
    let mut latencies: Vec<Vec<f64>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let params = &params;
                s.spawn(move || {
                    let a = Matrix::random(m, n, 100 + c as u64);
                    let mut lat = Vec::with_capacity(jobs_each);
                    for _ in 0..jobs_each {
                        let t = Instant::now();
                        let out = factor(&a, p, QrBackend::Tsqr, params)
                            .expect("tsqr on full-rank input");
                        lat.push(t.elapsed().as_secs_f64());
                        assert!(out.residual(&a) < TOL, "served factorization is wrong");
                    }
                    lat
                })
            })
            .collect();
        for h in handles {
            latencies.push(h.join().expect("client thread"));
        }
    });
    ServiceLoad {
        secs: t.elapsed().as_secs_f64(),
        latencies: latencies.into_iter().flatten().collect(),
    }
}

/// Run the streaming/updating QR: an `m × n` matrix arriving as `k`
/// equal row blocks appended to an [`UpdatingQr`] over `p` ranks.
/// Verify the assembled factorization against the concatenated input;
/// return the stream's total charged critical-path costs (appends plus
/// the finish replay) — deterministic, so the bench gate pins them
/// bitwise like every other `cost/*` record.
pub fn run_updating(m: usize, n: usize, p: usize, k: usize, seed: u64) -> Clock {
    assert!(m.is_multiple_of(k), "run_updating: k must divide m");
    let b = m / k;
    let blocks: Vec<Matrix> = (0..k)
        .map(|i| Matrix::random(b, n, seed + i as u64))
        .collect();
    let mut session = Session::new(p, FactorParams::new(CostParams::unit()));
    let out = session.factor_streaming(&blocks);
    let mut a = blocks[0].clone();
    for block in &blocks[1..] {
        a = a.vstack(block);
    }
    assert!(out.residual(&a) < TOL, "updating residual");
    out.critical
}

/// Wall-clock seconds to absorb `k` row blocks of `b × n` on `p` ranks
/// by **refactoring** every growing prefix from scratch versus
/// **streaming** them through one [`UpdatingQr`]. Returns
/// `(refactor, streaming)`; `refactor / streaming` is the speedup the
/// updating subsystem buys a long-lived session (≈ `(k + 1) / 2` in
/// flops, since refactoring pays the full prefix each arrival).
pub fn streaming_vs_refactor_secs(b: usize, n: usize, p: usize, k: usize) -> (f64, f64) {
    let blocks: Vec<Matrix> = (0..k)
        .map(|i| Matrix::random(b, n, 42 + i as u64))
        .collect();
    let mut session = Session::new(p, FactorParams::new(CostParams::unit()));
    // Streaming first: it pre-faults the allocator and page cache, which
    // is *generous to the refactor path* measured second.
    let t = Instant::now();
    let mut upd = UpdatingQr::new();
    for block in &blocks {
        upd.append_rows(&mut session, block);
    }
    let streamed = upd.finish(&mut session);
    let streaming = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let mut prefix = blocks[0].clone();
    let mut last = session
        .factor(&prefix, QrBackend::Tsqr)
        .expect("full-rank tsqr succeeds");
    for block in &blocks[1..] {
        prefix = prefix.vstack(block);
        last = session
            .factor(&prefix, QrBackend::Tsqr)
            .expect("full-rank tsqr succeeds");
    }
    let refactor = t.elapsed().as_secs_f64();

    assert!(streamed.residual(&prefix) < TOL, "streamed residual");
    assert!(last.residual(&prefix) < TOL, "refactored residual");
    (refactor, streaming)
}

/// Run the distributed column-pivoted QR on an `m × n` matrix over `p`
/// ranks; verify `A·P = Q·R`, orthogonality, permutation validity, the
/// non-increasing diagonal, and full-rank detection; return the
/// critical-path costs.
pub fn run_pivotqr(m: usize, n: usize, p: usize, seed: u64) -> Clock {
    let a = Matrix::random(m, n, seed);
    let lay = BlockRow::balanced(m, 1, p);
    let counts = lay.counts().to_vec();
    let machine = Machine::new(p, CostParams::unit());
    let out = machine.run(|rank| {
        let w = rank.world();
        let a_loc = a.take_rows(&lay.local_rows(w.rank()));
        pivot_qr_factor(rank, &w, &a_loc, &counts)
    });
    verify_rank_revealed(&a, &out.results, lay.counts(), n, "pivotqr", true);
    out.stats.critical()
}

/// Run the randomized RRQR on an `m × n` matrix over `p` ranks; verify
/// like [`run_pivotqr`]; return the critical-path costs.
pub fn run_rrqr(m: usize, n: usize, p: usize, seed: u64) -> Clock {
    let a = Matrix::random(m, n, seed);
    let lay = BlockRow::balanced(m, 1, p);
    let counts = lay.counts().to_vec();
    let machine = Machine::new(p, CostParams::unit());
    let out = machine.run(|rank| {
        let w = rank.world();
        let a_loc = a.take_rows(&lay.local_rows(w.rank()));
        rrqr_factor(rank, &w, &a_loc, &counts, &RrqrConfig::default())
    });
    // (No monotone-diagonal check here: the sketch orders the columns,
    // but the final unpivoted TSQR's diagonal only *approximately*
    // follows that order.)
    verify_rank_revealed(&a, &out.results, lay.counts(), n, "rrqr", false);
    out.stats.critical()
}

fn verify_rank_revealed(
    a: &Matrix,
    results: &[RankRevealedFactors],
    counts: &[usize],
    n: usize,
    what: &str,
    sorted_diag: bool,
) {
    use qr3d_matrix::pivot::{is_permutation, permute_cols};
    let first = &results[0];
    assert!(is_permutation(&first.perm, n), "{what}: permutation");
    assert_eq!(first.rank, n, "{what}: uniform random input is full rank");
    let facs: Vec<QrFactors> = results.iter().map(|r| r.factors.clone()).collect();
    let fac = qr3d_core::verify::assemble_block_row(&facs, counts);
    let ap = permute_cols(a, &first.perm);
    assert!(fac.residual(&ap) < TOL, "{what}: A·P = QR");
    assert!(fac.orthogonality() < TOL, "{what}: orthogonality");
    if sorted_diag {
        for j in 1..n {
            assert!(
                fac.r[(j, j)].abs() <= fac.r[(j - 1, j - 1)].abs() * (1.0 + 1e-10) + 1e-12,
                "{what}: R diagonal must decay"
            );
        }
    }
}

/// Run 1D-CAQR-EG with threshold `b`; verify; return critical-path costs.
pub fn run_caqr1d(m: usize, n: usize, p: usize, b: usize, seed: u64) -> Clock {
    let a = Matrix::random(m, n, seed);
    let lay = BlockRow::balanced(m, 1, p);
    let cfg = Caqr1dConfig::new(b);
    let machine = Machine::new(p, CostParams::unit());
    let out = machine.run(|rank| {
        let w = rank.world();
        let a_loc = a.take_rows(&lay.local_rows(w.rank()));
        caqr1d_factor(rank, &w, &a_loc, &cfg)
    });
    let fac = qr3d_core::verify::assemble_block_row(&out.results, lay.counts());
    assert!(fac.residual(&a) < TOL, "caqr1d residual");
    out.stats.critical()
}

/// Run 3D-CAQR-EG with the given thresholds; verify; return costs.
pub fn run_caqr3d(m: usize, n: usize, p: usize, cfg: Caqr3dConfig, seed: u64) -> Clock {
    let a = Matrix::random(m, n, seed);
    let lay = ShiftedRowCyclic::new(m, n, p, 0);
    let machine = Machine::new(p, CostParams::unit());
    let out = machine.run(|rank| {
        let w = rank.world();
        let a_loc = lay.scatter_from_full(&a, w.rank());
        caqr3d_factor(rank, &w, &a_loc, m, n, &cfg)
    });
    let fac = assemble_factorization(&out.results, m, n, p);
    assert!(fac.residual(&a) < TOL, "caqr3d residual");
    out.stats.critical()
}

/// Run `1d-house` with panel width `b`; verify; return costs.
pub fn run_house1d(m: usize, n: usize, p: usize, b: usize, seed: u64) -> Clock {
    let a = Matrix::random(m, n, seed);
    let lay = BlockRow::balanced(m, 1, p);
    let cfg = House1dConfig::new(b);
    let counts = lay.counts().to_vec();
    let machine = Machine::new(p, CostParams::unit());
    let out = machine.run(|rank| {
        let w = rank.world();
        let a_loc = a.take_rows(&lay.local_rows(w.rank()));
        house1d_factor(rank, &w, &a_loc, &counts, &cfg)
    });
    let r = out.results[0].r.as_ref().expect("rank 0 holds R");
    assert!(r_gram_error(&a, r) < TOL, "house1d R identity");
    out.stats.critical()
}

/// Run `2d-house` on the given grid; verify; return costs.
pub fn run_house2d(
    m: usize,
    n: usize,
    p: usize,
    cfg: qr3d_core::house2d::Grid2Config,
    seed: u64,
) -> Clock {
    let a = Matrix::random(m, n, seed);
    let machine = Machine::new(p, CostParams::unit());
    let out = machine.run(|rank| {
        let w = rank.world();
        let a_loc = cfg.scatter_from_full(&a, w.rank());
        house2d_factor(rank, &w, &a_loc, m, n, &cfg)
    });
    let r = out.results[0].r.as_ref().expect("rank 0 holds R");
    assert!(r_gram_error(&a, r) < TOL, "house2d R identity");
    out.stats.critical()
}

/// Run 2D `caqr` on the given grid; verify; return costs.
pub fn run_caqr2d(
    m: usize,
    n: usize,
    p: usize,
    cfg: qr3d_core::house2d::Grid2Config,
    seed: u64,
) -> Clock {
    let a = Matrix::random(m, n, seed);
    let machine = Machine::new(p, CostParams::unit());
    let out = machine.run(|rank| {
        let w = rank.world();
        let a_loc = cfg.scatter_from_full(&a, w.rank());
        caqr2d_factor(rank, &w, &a_loc, m, n, &cfg)
    });
    let r = out.results[0].r.as_ref().expect("rank 0 holds R");
    assert!(r_gram_error(&a, r) < TOL, "caqr2d R identity");
    out.stats.critical()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr3d_core::house2d::Grid2Config;

    #[test]
    fn runners_verify_and_measure() {
        let c = run_tsqr(64, 8, 4, 1);
        assert!(c.flops > 0.0 && c.words > 0.0 && c.msgs > 0.0);
        let c = run_cholqr2(64, 8, 4, 1);
        assert!(c.flops > 0.0 && c.words > 0.0 && c.msgs > 0.0);
        let single = c;
        let c = run_cholqr2_batch(64, 8, 4, 6, 1);
        assert!(
            c.msgs < 2.0 * single.msgs,
            "fused batch S = {} must stay near single S = {}",
            c.msgs,
            single.msgs
        );
        let (cold, warm) = executor_warm_vs_cold_secs(64, 8, 2, 3);
        assert!(cold > 0.0 && warm > 0.0);
        let c = run_updating(128, 8, 4, 4, 1);
        assert!(c.flops > 0.0 && c.words > 0.0 && c.msgs > 0.0);
        let (refactor, streaming) = streaming_vs_refactor_secs(64, 8, 4, 4);
        assert!(refactor > 0.0 && streaming > 0.0);
        let c = run_caqr1d(64, 8, 4, 4, 2);
        assert!(c.msgs > 0.0);
        let c = run_caqr3d(48, 12, 4, Caqr3dConfig::new(6, 3), 3);
        assert!(c.words > 0.0);
        let c = run_house1d(32, 8, 4, 2, 4);
        assert!(c.msgs > 0.0);
        let c = run_house2d(32, 8, 4, Grid2Config::new(2, 2, 2), 5);
        assert!(c.words > 0.0);
        let c = run_caqr2d(32, 8, 4, Grid2Config::new(2, 2, 2), 6);
        assert!(c.words > 0.0);
    }
}
