//! CI's bench-regression gate.
//!
//! ```text
//! bench_gate emit [--out FILE]       # measure, print/write a JSON report
//! bench_gate check BASELINE CURRENT  # diff two reports; exit 1 on regression
//! ```
//!
//! The report mixes two kinds of records:
//!
//! * **Deterministic cost counts** (`cost/…`, mode `eq`, tight tolerance):
//!   critical-path `(F, W, S)` of real simulated factorizations. The
//!   simulator's logical clocks are bit-for-bit reproducible, so *any*
//!   drift means an algorithm or collective changed its communication
//!   pattern — exactly what a communication-avoiding library must gate.
//! * **Wall-clock sanity** (`time/…` mode `le`, `speedup/…` mode `ge`,
//!   generous tolerances): catches order-of-magnitude kernel regressions
//!   without flaking on noisy CI runners.
//!
//! The committed `BENCH_baseline.json` carries the tolerances; `check`
//! applies the *baseline's* policy to the current measurements.

use std::sync::Arc;
use std::time::Instant;

use qr3d_bench::report::{BenchReport, GateMode};
use qr3d_bench::{
    executor_warm_vs_cold_secs, run_caqr1d, run_caqr3d, run_cholqr2, run_cholqr2_batch,
    run_cholqr2_batch_over, run_pivotqr, run_rrqr, run_tsqr, run_tsqr_ft, run_tsqr_over,
    run_updating, service_closed_loop, spawn_per_request_closed_loop, streaming_vs_refactor_secs,
};
use qr3d_core::prelude::Caqr3dConfig;
use qr3d_machine::{MpscTransport, RingTransport, Transport};
use qr3d_matrix::gemm::{gemm, gemm_reference, Trans};
use qr3d_matrix::par;
use qr3d_matrix::qr::{geqrt, geqrt_reference};
use qr3d_matrix::simd::{self, SimdLevel};
use qr3d_matrix::Matrix;

fn push_cost(report: &mut BenchReport, name: &str, c: qr3d_machine::Clock) {
    // Logical clocks are deterministic; 0.1% absorbs only float noise in
    // the (already deterministic) accumulation, effectively exact.
    report.push(format!("cost/{name}/flops"), c.flops, GateMode::Eq, 1e-3);
    report.push(format!("cost/{name}/words"), c.words, GateMode::Eq, 1e-3);
    report.push(format!("cost/{name}/msgs"), c.msgs, GateMode::Eq, 1e-3);
}

/// Median wall-clock seconds of `reps` runs of `f`.
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn emit() -> BenchReport {
    let mut report = BenchReport::default();

    // -- Deterministic communication/arithmetic counts. --
    let tsqr = run_tsqr(512, 16, 8, 7);
    let cholqr2 = run_cholqr2(512, 16, 8, 7);
    push_cost(&mut report, "tsqr_512x16x8", tsqr);
    push_cost(&mut report, "cholqr2_512x16x8", cholqr2);
    push_cost(
        &mut report,
        "caqr1d_256x16x4_b4",
        run_caqr1d(256, 16, 4, 4, 7),
    );
    push_cost(
        &mut report,
        "caqr3d_96x24x4",
        run_caqr3d(96, 24, 4, Caqr3dConfig::new(12, 6), 7),
    );

    // -- The fault-tolerant TSQR's deterministic counts: the same shape
    // as the headline tsqr record plus c = 1 checksum spare, run
    // fault-free. The encode prologue (coded blocks + GO barrier) is
    // the entire difference, so its bandwidth overhead is pinned as a
    // deterministic-over-deterministic ratio, exact to float noise. --
    let tsqr_ft = run_tsqr_ft(512, 16, 8, 1, 7);
    push_cost(&mut report, "tsqr_ft_512x16x8c1", tsqr_ft);
    report.push(
        "ratio/tsqr_ft_overhead_words",
        tsqr_ft.words / tsqr.words,
        GateMode::Eq,
        1e-9,
    );

    // -- The rank-revealing subsystem's deterministic counts, plus the
    // relation the randomized backend exists for: the sketch path must
    // amortize the pivot tournament's Θ(n log P) latency to O(log P). --
    let pivotqr = run_pivotqr(256, 32, 4, 7);
    let rrqr = run_rrqr(512, 16, 8, 7);
    push_cost(&mut report, "geqp3_256x32x4", pivotqr);
    push_cost(&mut report, "rrqr_512x16x8", rrqr);
    let pivot_same_shape = run_pivotqr(512, 16, 8, 7);
    report.push(
        "ratio/pivotqr_msgs_over_rrqr_msgs",
        pivot_same_shape.msgs / rrqr.msgs,
        GateMode::Ge,
        0.25,
    );

    // The headline relation this PR's backend exists for: CholeskyQR2
    // must keep beating TSQR on critical-path words at the same latency
    // scale. Stored as a ratio so the gate survives retuned constants.
    report.push(
        "ratio/tsqr_words_over_cholqr2_words",
        tsqr.words / cholqr2.words,
        GateMode::Ge,
        0.25,
    );

    // -- The service layer's acceptance relations. --
    // Fused batched CholeskyQR2 (k = 8 problems of 512 × 16 on P = 8):
    // deterministic critical-path counts, gating in particular
    // S_batch ≈ S_single (the whole point of fusion).
    let k = 8usize;
    let batch = run_cholqr2_batch(512, 16, 8, k, 7);
    push_cost(&mut report, "cholqr2_batch8_512x16x8", batch);
    // k sequential `factor` calls concatenate their critical paths
    // (k × the single-problem clock); the fused batch must spend ≥ 4×
    // fewer critical-path messages than that.
    report.push(
        "ratio/cholqr2_seq8_msgs_over_batch8_msgs",
        k as f64 * cholqr2.msgs / batch.msgs,
        GateMode::Ge,
        0.25,
    );

    // -- Transport independence. Every flop, word, and clock merge is
    // charged above the `Transport` boundary, so swapping the message
    // substrate must not move a single charged message: both ratios are
    // deterministic-over-deterministic and gated exactly at 1. --
    {
        let ring = || -> Arc<dyn Transport> { Arc::new(RingTransport::default()) };
        let mpsc = || -> Arc<dyn Transport> { Arc::new(MpscTransport) };
        let tsqr_ring = run_tsqr_over(ring(), 512, 16, 8, 7);
        let tsqr_mpsc = run_tsqr_over(mpsc(), 512, 16, 8, 7);
        report.push(
            "ratio/tsqr_msgs_ring_over_mpsc",
            tsqr_ring.msgs / tsqr_mpsc.msgs,
            GateMode::Eq,
            1e-9,
        );
        let batch_ring = run_cholqr2_batch_over(ring(), 512, 16, 8, k, 7);
        let batch_mpsc = run_cholqr2_batch_over(mpsc(), 512, 16, 8, k, 7);
        report.push(
            "ratio/cholqr2_batch8_msgs_ring_over_mpsc",
            batch_ring.msgs / batch_mpsc.msgs,
            GateMode::Eq,
            1e-9,
        );
    }

    // Warm-executor serving throughput: the same TSQR job stream through
    // one persistent executor vs cold per-call `Machine::run` spawning.
    // Wall-clock, so gate only the ratio, with a generous floor.
    let speedup = {
        let mut ratios: Vec<f64> = (0..3)
            .map(|_| {
                let (cold, warm) = executor_warm_vs_cold_secs(512, 16, 8, 24);
                cold / warm
            })
            .collect();
        ratios.sort_by(|a, b| a.total_cmp(b));
        ratios[ratios.len() / 2]
    };
    // Tolerance 0.45 keeps the floor above 1.0 for a baseline ≈ 2×: a
    // warm executor that stops beating cold spawning is a regression of
    // the feature, not noise.
    report.push(
        "speedup/warm_executor_over_cold_512x16x8",
        speedup,
        GateMode::Ge,
        0.45,
    );

    // The service layer's headline: at 16 concurrent closed-loop
    // clients, the warm coalesced pool must sustain more requests per
    // second than spawn-per-request `factor` calls. Wall-clock on
    // contended thread scheduling, so: median of 3 and a generous
    // tolerance — chosen so the gated floor still sits above 1× (the
    // pool *losing* to naive spawning is a feature regression, never
    // noise).
    let pool_speedup = {
        let mut ratios: Vec<f64> = (0..3)
            .map(|_| {
                let naive = spawn_per_request_closed_loop(512, 16, 8, 16, 3);
                let fused = service_closed_loop(512, 16, 8, 16, 3, true);
                fused.reqs_per_sec() / naive.reqs_per_sec()
            })
            .collect();
        ratios.sort_by(|a, b| a.total_cmp(b));
        ratios[ratios.len() / 2]
    };
    report.push(
        "speedup/service_pool_coalesced_over_spawn_k16",
        pool_speedup,
        GateMode::Ge,
        0.5,
    );

    // -- The streaming/updating subsystem. Deterministic charged counts
    // of k = 4 appended blocks (the headline tsqr shape arriving as a
    // stream), then the wall-clock relation the subsystem exists for:
    // absorbing arrivals through the carry stack must beat refactoring
    // every growing prefix from scratch (≈ (k + 1)/2 in flops). Median
    // of 3 and a generous tolerance — the floor still sits above 1×, so
    // streaming *losing* to refactoring is a feature regression, never
    // noise. --
    push_cost(
        &mut report,
        "update_512x16x8k4",
        run_updating(512, 16, 8, 4, 7),
    );
    let stream_speedup = {
        let mut ratios: Vec<f64> = (0..3)
            .map(|_| {
                let (refactor, streaming) = streaming_vs_refactor_secs(256, 16, 4, 8);
                refactor / streaming
            })
            .collect();
        ratios.sort_by(|a, b| a.total_cmp(b));
        ratios[ratios.len() / 2]
    };
    report.push(
        "speedup/streaming_append_over_refactor",
        stream_speedup,
        GateMode::Ge,
        0.6,
    );

    // -- Wall-clock sanity. Only the blocked/reference *ratio* is gated:
    // both kernels run on the same machine in the same process, so the
    // ratio survives CI runners whose absolute throughput (and codegen —
    // CI pins RUSTFLAGS="" where dev builds use target-cpu=native) bears
    // no relation to the committing machine's. --
    let n = 192usize;
    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);
    let mut cm = Matrix::zeros(n, n);
    let blocked = time_median(5, || gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut cm));
    let reference = time_median(3, || {
        gemm_reference(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut cm)
    });
    report.push(
        "speedup/gemm_blocked_over_reference_192",
        reference / blocked,
        GateMode::Ge,
        0.6,
    );

    // The blocked local QR kernel: tiled panels + larfb through the
    // blocked gemm vs the seed's column-at-a-time rank-1 updates. Same
    // ratio-only gating as the gemm record; the large shape is the PR's
    // acceptance record (committed value must stay ≥ 2× even after the
    // generous tolerance).
    for (m, n, reps) in [(256usize, 64usize, 7usize), (1024, 256, 3)] {
        let a = Matrix::random(m, n, 3);
        let blocked = time_median(reps, || {
            std::hint::black_box(geqrt(&a));
        });
        let reference = time_median(reps, || {
            std::hint::black_box(geqrt_reference(&a));
        });
        report.push(
            format!("speedup/geqrt_blocked_over_reference_{m}x{n}"),
            reference / blocked,
            GateMode::Ge,
            0.6,
        );
    }

    // Explicit-SIMD dispatch vs the forced fused-scalar fallback at
    // 512³. Ratio-only (same process, same machine); the floor mostly
    // guards against the dispatcher silently landing on the fallback.
    // Under CI's RUSTFLAGS="" the scalar path's `mul_add` becomes a libm
    // call, so the CI-side ratio is far *above* any native-build
    // baseline — the generous tolerance is for the other direction.
    {
        let n = 512usize;
        let a = Matrix::random(n, n, 5);
        let b = Matrix::random(n, n, 6);
        let mut cm = Matrix::zeros(n, n);
        simd::force_level(Some(SimdLevel::Scalar));
        let scalar = time_median(3, || gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut cm));
        simd::force_level(None);
        let auto = time_median(3, || gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut cm));
        report.push(
            "speedup/gemm_simd_over_scalar_512",
            scalar / auto,
            GateMode::Ge,
            0.6,
        );
    }

    // Within-rank threading, 4 workers vs 1, on the acceptance geqrt
    // shape. On a single-core host (this container, some CI runners) the
    // ratio hovers near 1.0 — the pool degrades to the caller draining
    // its own chunks — so the floor is conservative: it catches the pool
    // *costing* real time, while multicore hosts measure genuine
    // speedup above it.
    {
        let a = Matrix::random(1024, 256, 7);
        let t1 = par::with_forced_fanout(1, || {
            time_median(3, || {
                std::hint::black_box(geqrt(&a));
            })
        });
        let t4 = par::with_forced_fanout(4, || {
            time_median(3, || {
                std::hint::black_box(geqrt(&a));
            })
        });
        report.push(
            "speedup/geqrt_threads4_over_threads1_1024x256",
            t1 / t4,
            GateMode::Ge,
            0.6,
        );
    }

    report
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("emit") => {
            let report = emit();
            let json = report.to_json();
            match args.iter().position(|a| a == "--out") {
                Some(i) => {
                    let path = args.get(i + 1).unwrap_or_else(|| {
                        eprintln!("--out needs a path");
                        std::process::exit(2);
                    });
                    std::fs::write(path, &json).unwrap_or_else(|e| {
                        eprintln!("cannot write {path}: {e}");
                        std::process::exit(2);
                    });
                    eprintln!("wrote {} records to {path}", report.records.len());
                }
                None => print!("{json}"),
            }
        }
        Some("check") => {
            let (Some(base_path), Some(cur_path)) = (args.get(1), args.get(2)) else {
                eprintln!("usage: bench_gate check BASELINE CURRENT");
                std::process::exit(2);
            };
            let read = |p: &String| {
                std::fs::read_to_string(p).unwrap_or_else(|e| {
                    eprintln!("cannot read {p}: {e}");
                    std::process::exit(2);
                })
            };
            let parse = |p: &String, text: String| {
                BenchReport::from_json(&text).unwrap_or_else(|e| {
                    eprintln!("cannot parse {p}: {e}");
                    std::process::exit(2);
                })
            };
            let base = parse(base_path, read(base_path));
            let cur = parse(cur_path, read(cur_path));
            // Ungated metrics are failures, not warnings: a new record
            // whose baseline was never regenerated must not merge
            // silently unchecked.
            let mut violations: Vec<String> = base
                .ungated(&cur)
                .into_iter()
                .map(|name| {
                    format!(
                        "{name}: measured but not in {base_path} — regenerate \
                         the baseline (emit --out {base_path}) to gate it"
                    )
                })
                .collect();
            violations.extend(base.compare(&cur));
            if violations.is_empty() {
                println!(
                    "bench gate: OK ({} baseline records checked)",
                    base.records.len()
                );
            } else {
                eprintln!("bench gate: {} violation(s)", violations.len());
                for v in &violations {
                    eprintln!("  {v}");
                }
                std::process::exit(1);
            }
        }
        _ => {
            eprintln!("usage: bench_gate emit [--out FILE] | bench_gate check BASELINE CURRENT");
            std::process::exit(2);
        }
    }
}
