//! Minimal offline stand-in for the `proptest` crate.
//!
//! The real `proptest` is unavailable in this build environment, so this
//! crate provides the small API surface the workspace's property tests
//! use: the [`proptest!`] macro, range and boolean strategies, and the
//! `prop_assert*` family. Cases are generated deterministically from the
//! test name and case index (SplitMix64), so failures reproduce exactly;
//! there is no shrinking.

use std::ops::Range;

/// Configuration accepted via `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic SplitMix64 generator seeding each case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the test name and case index so every case is
    /// reproducible independent of execution order.
    pub fn from_name_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64) << 32) ^ 0xd1b5_4a32_d192_ed03,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A value generator: proptest's `Strategy`, reduced to pure sampling.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy yielding `Vec`s of `element` samples with a length drawn
    /// from `len` — the vendored stand-in for `prop::collection::vec`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` strategy sampling `len` elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;
    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl super::Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut super::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The macro surface and common types, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy};
}

/// Assert inside a property test (panics with context; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running `cases` deterministic samples of its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng =
                    $crate::TestRng::from_name_case(stringify!($name), __case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                // A closure so `prop_assume!` can skip the case via `return`.
                let __one_case = move || $body;
                __one_case();
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_name_case("t", 3);
        let mut b = TestRng::from_name_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = TestRng::from_name_case("r", 0);
        for _ in 0..1000 {
            let v = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_cases(x in 1usize..5, flip in crate::bool::ANY) {
            prop_assume!(x != 0);
            prop_assert!(x < 5);
            prop_assert_eq!(flip as usize <= 1, true);
        }
    }
}
